"""Append-only, content-addressed store of evaluated campaign results.

The store turns "run a campaign" into "compute once, serve forever": every
:class:`~repro.dse.CampaignResult` is serialized through the versioned
:mod:`repro.experiments.persistence` schema and appended to a *segment*
file, keyed by the content hash of its canonical JSON form and indexed by
the embedded spec's :meth:`~repro.experiments.ExperimentSpec.fingerprint`
plus its network and device names.  Consumers (the HTTP server, the CLI,
notebooks) answer "what-if" queries against stored results without owning
the evaluation engine.

Layout on disk::

    <root>/
      segments/segment-000001.col     # binary columnar blocks (default)
      segments/segment-000002.jsonl   # legacy JSONL envelopes (import path)
      segments/.trash/                # compacted-away segments pending unlink
      index.json                      # metadata by key; rebuildable

Two segment formats share one numbering sequence:

* **columnar** (``.col``, the default) — each stored result is one binary
  block of NumPy-structured design-point columns (:mod:`.columnar`),
  memory-mapped on read so ``query``/``pareto``/``best`` run as zero-copy
  vectorized column scans and only the returned page of rows is ever
  materialized.
* **jsonl** (``.jsonl``) — the original one-envelope-per-line text format,
  retained as an import/migration path; :meth:`ResultStore.migrate`
  rewrites a store between formats in one pass and reads understand both
  forever.

Properties:

* **Content-addressed** — ``put`` of a content-identical result (same
  spec, points and evaluation count; run provenance such as timings and
  cache statistics excluded from the key) is a no-op returning the
  existing key, so re-submitting a campaign never duplicates storage.
* **Append-only** — segments are only ever appended to (and atomically
  rewritten by :meth:`ResultStore.compact`); a crash mid-append loses at
  most the trailing partial line/block, which the loader skips.
* **Self-healing index** — ``index.json`` is a cache; when missing, stale
  or corrupt it is rebuilt by scanning the segments.
* **Reader-safe compaction** — compaction never truncates a segment in
  place: rewritten segments are promoted with atomic renames and old ones
  are moved aside into ``segments/.trash`` before unlinking, so a reader
  holding a memory-mapped block keeps a consistent view for as long as it
  holds the map.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..dse.campaign import CampaignResult
from ..experiments.persistence import RESULT_SCHEMA, result_from_dict, result_to_dict
from ..experiments.spec import ExperimentSpec, canonical_json_hash
from .query import ReferenceEngine, best_row, pareto_rows, query_rows
from .queryspec import (
    BestResult,
    ParetoPage,
    QueryPage,
    QuerySpec,
    decode_cursor,
    encode_cursor,
)

try:  # Columnar segments need NumPy; JSONL keeps working without it.
    from . import columnar as _columnar
    from .query import ColumnarEngine
except ImportError:  # pragma: no cover - exercised only on numpy-free installs
    _columnar = None  # type: ignore[assignment]
    ColumnarEngine = None  # type: ignore[assignment,misc]

__all__ = ["StoreRecord", "ResultStore", "result_key"]

#: Versioned schema tags for the segment envelopes and the index cache.
ENVELOPE_SCHEMA = "repro.result-store/1"
INDEX_SCHEMA = "repro.result-store-index/1"

#: How many per-result query engines (memory-mapped columnar blocks or
#: decoded reference payloads) the store keeps warm.
ENGINE_CACHE_SIZE = 16


#: Provenance-only payload fields excluded from the content key: they vary
#: between two runs of the same spec (wall clock, cache temperature) while
#: the *content* — spec, points, evaluation count — is deterministic, and
#: re-running a campaign must dedup to the stored result.
VOLATILE_FIELDS = ("elapsed_seconds", "cache_stats")


def result_key(payload: Dict[str, Any]) -> str:
    """Content hash of a serialized campaign result (the storage key).

    Hashes the canonical JSON form (same policy as
    :func:`repro.experiments.spec.canonical_json_hash` spec fingerprints)
    with run-provenance fields (:data:`VOLATILE_FIELDS`) stripped and the
    embedded spec's execution-tuning fields removed — every executor mode
    returns bit-identical points, so two evaluations of the same search
    share a key no matter how long they took, how warm the cache was or
    which engine ran them.
    """
    content = {k: v for k, v in payload.items() if k not in VOLATILE_FIELDS}
    spec = content.get("spec")
    if isinstance(spec, dict):
        content["spec"] = {
            k: v
            for k, v in spec.items()
            if k not in ExperimentSpec.EXECUTION_ONLY_FIELDS
        }
    return canonical_json_hash(content)


@dataclass(frozen=True)
class StoreRecord:
    """Index metadata of one stored result (no point payload).

    ``segment``/``offset`` locate the envelope/block on disk, so a read is
    one seek instead of a segment scan; ``offset`` is ``-1`` for records
    whose position is unknown (falls back to scanning).
    """

    key: str
    fingerprint: str
    name: str
    networks: tuple
    devices: tuple
    points: int
    evaluations: int
    sequence: int
    created: float
    segment: str
    offset: int = -1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready index row; inverse of :meth:`from_dict`."""
        return {
            "key": self.key,
            "fingerprint": self.fingerprint,
            "name": self.name,
            "networks": list(self.networks),
            "devices": list(self.devices),
            "points": self.points,
            "evaluations": self.evaluations,
            "sequence": self.sequence,
            "created": self.created,
            "segment": self.segment,
            "offset": self.offset,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StoreRecord":
        """Rebuild a record from :meth:`to_dict` output (offset optional)."""
        return cls(
            key=data["key"],
            fingerprint=data["fingerprint"],
            name=data["name"],
            networks=tuple(data["networks"]),
            devices=tuple(data["devices"]),
            points=data["points"],
            evaluations=data["evaluations"],
            sequence=data["sequence"],
            created=data["created"],
            segment=data["segment"],
            offset=data.get("offset", -1),
        )


class ResultStore:
    """Persistent campaign-result store rooted at a directory.

    Thread-safe: every public method takes the store lock, so the HTTP
    server's event loop and its evaluation worker threads can share one
    instance.  Results themselves stay on disk — only index metadata is
    held in memory — so the store's footprint is independent of how many
    points the stored campaigns contain.

    ``format`` picks the segment format new appends use (``"columnar"`` /
    ``"jsonl"``); when omitted it is auto-detected from the existing
    segments (columnar wins for a fresh store when NumPy is available).
    Reads always understand both formats regardless.
    """

    def __init__(
        self,
        root: Union[str, Path],
        segment_max_records: int = 64,
        format: Optional[str] = None,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        if format not in (None, "columnar", "jsonl"):
            raise ValueError(f"unknown store format {format!r}")
        if format == "columnar" and _columnar is None:
            raise ValueError("columnar store format requires numpy")
        self.root = Path(root)
        self.segment_max_records = segment_max_records
        self._lock = threading.RLock()
        self._records: Dict[str, StoreRecord] = {}
        self._next_sequence = 1
        self._segments_dir = self.root / "segments"
        self._trash_dir = self._segments_dir / ".trash"
        self._index_path = self.root / "index.json"
        self._segments_dir.mkdir(parents=True, exist_ok=True)
        self.format = format if format is not None else self._detect_format()
        # Per-result query engines, LRU by content key.  An engine owns a
        # memory-mapped columnar block (or a decoded payload for JSONL /
        # opaque blocks); entries are validated against the index row and
        # dropped wholesale on compact/rebuild.
        self._engines: "OrderedDict[str, Tuple[str, int, Any]]" = OrderedDict()
        # Append cursor: the active segment, its record count and whether
        # its tail is clean — maintained in memory so a put() never has to
        # re-read the segment it is appending to.
        self._active_segment: Optional[Path] = None
        self._active_count = 0
        self._active_tail_clean = True
        self._drain_trash()
        self._load_index()
        self._reset_append_cursor()

    # ------------------------------------------------------------------ #
    # Loading / index maintenance
    # ------------------------------------------------------------------ #
    def _detect_format(self) -> str:
        if any(self._segments_dir.glob("segment-*.col")):
            return "columnar"
        if any(self._segments_dir.glob("segment-*.jsonl")):
            return "jsonl"
        return "columnar" if _columnar is not None else "jsonl"

    def _segment_paths(self) -> List[Path]:
        paths = list(self._segments_dir.glob("segment-*.jsonl"))
        paths.extend(self._segments_dir.glob("segment-*.col"))
        return sorted(paths, key=lambda p: (int(p.stem.split("-")[1]), p.name))

    def _drain_trash(self) -> None:
        """Best-effort unlink of segments compaction moved aside.

        Compaction defers the unlink of replaced segments (readers may
        hold them memory-mapped); whatever could not be removed then is
        retried here on every open and after every compact.
        """
        if not self._trash_dir.is_dir():
            return
        for path in list(self._trash_dir.iterdir()):
            try:
                path.unlink()
            except OSError:  # still mapped by a reader (e.g. Windows)
                pass

    def _complete_record_count(self, path: Path) -> int:
        """Complete records in a segment (torn tails excluded), any format."""
        if path.suffix == ".col":
            if _columnar is None:
                raise ValueError(
                    f"cannot read columnar segment {path.name!r} without numpy"
                )
            return _columnar.complete_block_count(path)
        return self._complete_line_count(path.read_bytes())

    def _load_index(self) -> None:
        """Load ``index.json``, falling back to a full segment scan.

        The index is trusted only when it is provably in sync with the
        segments: every indexed segment must exist and every segment's
        on-disk complete-record count must equal the number of records
        indexed in it.  A crash after a segment append but before the
        index write therefore triggers a rebuild — the orphaned (fully
        written) envelope is recovered, never silently hidden.  Batched
        ingest (``put_payload(..., flush_index=False)``) leans on the
        same property: the records it appends before the final
        :meth:`flush_index` are recovered identically.
        """
        if self._index_path.exists():
            try:
                data = json.loads(self._index_path.read_text())
                if data.get("schema") != INDEX_SCHEMA:
                    raise ValueError("wrong index schema")
                records = {
                    key: StoreRecord.from_dict(entry)
                    for key, entry in data["records"].items()
                }
                indexed_per_segment: Dict[str, int] = {}
                for record in records.values():
                    indexed_per_segment[record.segment] = (
                        indexed_per_segment.get(record.segment, 0) + 1
                    )
                # Count *complete* records: a torn tail from a crash
                # mid-append is not yet a record, so it must not
                # invalidate the index on every subsequent open.
                disk_per_segment = {
                    path.name: self._complete_record_count(path)
                    for path in self._segment_paths()
                }
                if indexed_per_segment != disk_per_segment:
                    raise ValueError("index out of sync with segments")
                self._records = records
                self._next_sequence = int(data.get("next_sequence", 1))
                return
            except (ValueError, KeyError, TypeError, json.JSONDecodeError):
                pass  # fall through to rebuild
        self.rebuild_index()

    @staticmethod
    def _scan_segment(path: Path):
        """Yield ``(offset, envelope)`` for every parseable line of a JSONL segment.

        Torn trailing lines (crash mid-append) and foreign content are
        skipped.
        """
        data = path.read_bytes()
        offset = 0
        for raw in data.splitlines(keepends=True):
            line = raw.strip()
            if line:
                try:
                    envelope = json.loads(line)
                except json.JSONDecodeError:
                    envelope = None  # torn write at the tail of a segment
                if isinstance(envelope, dict) and envelope.get("schema") == ENVELOPE_SCHEMA:
                    yield offset, envelope
            offset += len(raw)

    def _scan_metas(self, path: Path):
        """Yield ``(offset, meta)`` for every complete record of a segment."""
        if path.suffix == ".col":
            for offset, header in _columnar.iter_blocks(path):
                meta = header.get("meta")
                if isinstance(meta, dict):
                    yield offset, meta
        else:
            for offset, envelope in self._scan_segment(path):
                yield offset, envelope["meta"]

    def rebuild_index(self) -> int:
        """Rescan every segment and rewrite ``index.json``.

        Returns the number of live records.  Later envelopes win on key
        collisions (compaction preserves this by keeping the newest).
        Partial trailing lines/blocks (crash mid-append) are skipped.
        """
        with self._lock:
            self._records = {}
            self._engines.clear()
            max_sequence = 0
            for path in self._segment_paths():
                for offset, meta in self._scan_metas(path):
                    record = StoreRecord.from_dict(
                        {**meta, "segment": path.name, "offset": offset}
                    )
                    self._records[record.key] = record
                    max_sequence = max(max_sequence, record.sequence)
            self._next_sequence = max_sequence + 1
            self._write_index()
            self._reset_append_cursor()
            return len(self._records)

    def _write_index(self) -> None:
        payload = {
            "schema": INDEX_SCHEMA,
            "next_sequence": self._next_sequence,
            "records": {
                key: record.to_dict() for key, record in self._records.items()
            },
        }
        tmp = self._index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, self._index_path)

    def flush_index(self) -> None:
        """Persist the in-memory index now (see ``put_payload(flush_index=)``)."""
        with self._lock:
            self._write_index()

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    @staticmethod
    def _complete_line_count(data: bytes) -> int:
        """Non-blank, newline-terminated lines (a torn tail is excluded)."""
        return sum(1 for line in data.split(b"\n")[:-1] if line.strip())

    def _reset_append_cursor(self) -> None:
        """Re-derive the append cursor from disk (open / rebuild / compact)."""
        paths = self._segment_paths()
        if not paths:
            self._active_segment = None
            self._active_count = 0
            self._active_tail_clean = True
            return
        last = paths[-1]
        self._active_segment = last
        if last.suffix == ".col":
            count, end = _columnar.segment_extent(last)
            self._active_count = count
            self._active_tail_clean = end == last.stat().st_size
        else:
            data = last.read_bytes()
            self._active_count = self._complete_line_count(data)
            self._active_tail_clean = (not data) or data.endswith(b"\n")

    def _segment_suffix(self) -> str:
        return ".col" if self.format == "columnar" else ".jsonl"

    def _append_segment(self) -> Path:
        """The segment new records append to.

        Rolls over to a fresh segment when the active one is full, is in
        the other format, or has a torn tail (a crash mid-append left
        trailing garbage): appending there would merge the new record
        into the torn bytes and lose it to the next rescan, so the torn
        segment is left as-is for compact() to clean up.
        """
        if (
            self._active_segment is not None
            and self._active_segment.suffix == self._segment_suffix()
            and self._active_count < self.segment_max_records
            and self._active_tail_clean
        ):
            return self._active_segment
        if self._active_segment is not None:
            number = int(self._active_segment.stem.split("-")[1]) + 1
        else:
            number = 1
        self._active_segment = (
            self._segments_dir / f"segment-{number:06d}{self._segment_suffix()}"
        )
        self._active_count = 0
        self._active_tail_clean = True
        return self._active_segment

    def put(self, result: CampaignResult) -> str:
        """Persist a result; returns its content key.

        Re-putting a content-identical result — same spec, same points,
        same evaluation count; run provenance like timings excluded — is
        a no-op that returns the existing key (content addressing), so
        re-submitting a campaign never duplicates storage.
        """
        return self.put_payload(result_to_dict(result))

    def put_payload(self, payload: Dict[str, Any], flush_index: bool = True) -> str:
        """Persist an already-serialized result payload; returns its key.

        ``payload`` is the versioned :func:`~repro.experiments.persistence.result_to_dict`
        form (``put`` delegates here after serializing).  The job scheduler
        ingests worker-produced payloads through this entry point so the
        parent process never re-materializes design points just to store
        them.  Same content addressing and dedup rules as :meth:`put`.

        ``flush_index=False`` skips the per-put ``index.json`` rewrite for
        bulk ingest; callers finish with :meth:`flush_index`.  A crash in
        between leaves a stale index, which the next open detects (record
        counts disagree) and heals by rebuilding — nothing appended is
        ever lost.
        """
        if payload.get("schema") != RESULT_SCHEMA:
            raise ValueError(
                f"result payload has schema {payload.get('schema')!r}; "
                f"expected {RESULT_SCHEMA!r}"
            )
        spec_data = payload.get("spec")
        if not isinstance(spec_data, dict):
            raise ValueError("result payload has no embedded spec mapping")
        fingerprint = canonical_json_hash(
            {
                k: v
                for k, v in spec_data.items()
                if k not in ExperimentSpec.EXECUTION_ONLY_FIELDS
            }
        )
        key = result_key(payload)
        with self._lock:
            existing = self._records.get(key)
            if existing is not None:
                return key
            segment = self._append_segment()
            record = StoreRecord(
                key=key,
                fingerprint=fingerprint,
                name=spec_data.get("name", "experiment"),
                networks=tuple(spec_data.get("networks", ())),
                devices=tuple(spec_data.get("devices", ())),
                points=len(payload.get("points", ())),
                evaluations=payload.get("evaluations", 0),
                sequence=self._next_sequence,
                created=time.time(),
                segment=segment.name,
            )
            # segment/offset are positional, known only to the index.
            meta = {
                k: v
                for k, v in record.to_dict().items()
                if k not in ("segment", "offset")
            }
            if segment.suffix == ".col":
                blob = _columnar.encode_block(meta, payload)
            else:
                envelope = {"schema": ENVELOPE_SCHEMA, "meta": meta, "result": payload}
                blob = (json.dumps(envelope, separators=(",", ":")) + "\n").encode()
            # Binary mode: tell() must be a true byte offset for get()'s seek.
            with segment.open("ab") as handle:
                offset = handle.tell()
                handle.write(blob)
                handle.flush()
            self._active_count += 1
            self._records[key] = replace(record, offset=offset)
            self._next_sequence += 1
            if flush_index:
                self._write_index()
            return key

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def keys(self) -> List[str]:
        """Every stored content key, oldest sequence first."""
        with self._lock:
            return sorted(self._records, key=lambda key: self._records[key].sequence)

    def stats(self) -> Dict[str, Any]:
        """Segment-level store statistics for metrics and ``/v1/stats``.

        ``segment_bytes`` is on-disk size summed over live segments (the
        trash directory is excluded — those bytes are already logically
        gone).  Cheap enough to call at scrape time: one ``stat`` per
        segment, no file contents touched.
        """
        with self._lock:
            paths = self._segment_paths()
            by_format = {"columnar": 0, "jsonl": 0}
            total_bytes = 0
            for path in paths:
                by_format["columnar" if path.suffix == ".col" else "jsonl"] += 1
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    pass
            return {
                "results": len(self._records),
                "segments": len(paths),
                "segment_bytes": total_bytes,
                "segments_by_format": by_format,
                "format": self.format,
            }

    def record(self, key: str) -> StoreRecord:
        """Index metadata for ``key``; raises ``KeyError`` when absent."""
        with self._lock:
            return self._records[key]

    def get(self, key: str) -> CampaignResult:
        """Load the full result stored under ``key``.

        Raises ``KeyError`` for unknown keys.  The deserialized result
        goes through the same versioned loader as ``CampaignResult.load``,
        so schema guarantees apply to store reads too.
        """
        return result_from_dict(self.get_payload(key))

    def _block_at(self, path: Path, offset: int, key: str):
        """The columnar block for ``key`` (offset first, scan fallback)."""
        if offset >= 0:
            try:
                block = _columnar.ColumnarBlock.read_at(path, offset)
            except (ValueError, OSError):
                block = None
            if block is not None and block.key == key:
                return block
        for found_offset, header in _columnar.iter_blocks(path):
            if header.get("meta", {}).get("key") == key:
                return _columnar.ColumnarBlock.read_at(path, found_offset)
        return None

    def get_payload(self, key: str) -> Dict[str, Any]:
        """The raw serialized payload stored under ``key`` (no rebuild).

        What :meth:`get` parses into a :class:`CampaignResult`; the job
        scheduler reassembles campaigns from these directly.  Reads are
        one seek via the record's byte offset (falling back to a segment
        scan when the offset is unknown or stale).
        """
        with self._lock:
            record = self._records[key]
            path = self._segments_dir / record.segment
            if path.suffix == ".col":
                block = self._block_at(path, record.offset, key)
                if block is not None:
                    return block.payload()
            else:
                if record.offset >= 0:
                    with path.open("rb") as handle:
                        handle.seek(record.offset)
                        line = handle.readline()
                    try:
                        envelope = json.loads(line)
                    except json.JSONDecodeError:
                        envelope = None
                    if (
                        isinstance(envelope, dict)
                        and envelope.get("meta", {}).get("key") == key
                    ):
                        return envelope["result"]
                # Fallback: offset unknown/stale — scan the segment.
                for _, envelope in self._scan_segment(path):
                    if envelope.get("meta", {}).get("key") == key:
                        return envelope["result"]
        raise KeyError(f"stored result {key!r} vanished from segment {record.segment!r}")

    # ------------------------------------------------------------------ #
    # Spec-driven reads (the unified query surface)
    # ------------------------------------------------------------------ #
    def _engine_for(self, key: str):
        """The query engine for one stored result (LRU-cached).

        Columnar blocks get the zero-copy :class:`ColumnarEngine`; JSONL
        envelopes and opaque blocks get the :class:`ReferenceEngine` over
        the decoded payload.  Both answer queries identically.
        """
        record = self._records[key]
        cached = self._engines.get(key)
        if cached is not None:
            segment, offset, engine = cached
            if segment == record.segment and offset == record.offset:
                self._engines.move_to_end(key)
                return engine
            del self._engines[key]
        path = self._segments_dir / record.segment
        engine = None
        if path.suffix == ".col":
            block = self._block_at(path, record.offset, key)
            if block is None:
                raise KeyError(
                    f"stored result {key!r} vanished from segment {record.segment!r}"
                )
            if not block.opaque:
                engine = ColumnarEngine(block)
            else:
                engine = ReferenceEngine(block.payload())
        if engine is None:
            engine = ReferenceEngine(self.get_payload(key))
        self._engines[key] = (record.segment, record.offset, engine)
        while len(self._engines) > ENGINE_CACHE_SIZE:
            self._engines.popitem(last=False)
        return engine

    def _resolve(self, spec: QuerySpec, mode: str) -> Tuple[str, int, str]:
        """Pick the stored result a spec addresses: ``(key, start row, binding)``.

        A ``cursor`` re-addresses the result its first page came from (and
        must have been minted by a query of the same shape); an explicit
        ``key`` wins next; otherwise the newest record matching the
        ``fingerprint``/``network``/``device``/``name`` filters is used.
        Raises ``KeyError`` with the stable not-found messages the HTTP
        layer forwards verbatim.
        """
        binding = spec.binding_hash(mode)
        if spec.cursor is not None:
            token = decode_cursor(spec.cursor)
            if token["q"] != binding:
                raise ValueError(
                    "invalid cursor: cursor was issued for a different query"
                )
            key = token["k"]
            if spec.key is not None and spec.key != key:
                raise ValueError(
                    "invalid cursor: cursor belongs to a different result"
                )
            if key not in self._records:
                raise KeyError(f"no stored result with key {key!r}")
            return key, token["o"], binding
        if spec.key is not None:
            if spec.key not in self._records:
                raise KeyError(f"no stored result with key {spec.key!r}")
            return spec.key, 0, binding
        filters = {
            "fingerprint": spec.fingerprint,
            "network": spec.network,
            "device": spec.device,
            "name": spec.name,
        }
        matches = self._query_records(**filters)
        if not matches:
            raise KeyError(
                "no stored result matches "
                + (
                    json.dumps({k: v for k, v in filters.items() if v})
                    if any(filters.values())
                    else "an empty store"
                )
            )
        return matches[-1].key, 0, binding

    def query_page(self, spec: QuerySpec) -> QueryPage:
        """One page of filtered/sorted/top-k rows from one stored result.

        Row semantics (filter by ``network``/``device``/``where``, stable
        sort by ``metric``/``maximize``, ``top_k`` cap, ``select``
        projection) are identical on columnar and JSONL storage; ``limit``
        and ``cursor`` paginate the ordered row set and ``next_cursor``
        continues it, stable across concurrent appends and compactions.
        """
        with self._lock:
            key, start, binding = self._resolve(spec, "query")
            engine = self._engine_for(key)
            segment = self._records[key].segment
        rows, total, next_start = query_rows(engine, spec, start, spec.limit)
        next_cursor = (
            encode_cursor(key, segment, next_start, binding)
            if next_start is not None
            else None
        )
        return QueryPage(key=key, rows=rows, total=total, next_cursor=next_cursor)

    def query(
        self,
        spec: Union[QuerySpec, str, None] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
        name: Optional[str] = None,
        *,
        fingerprint: Optional[str] = None,
    ):
        """Spec-driven page query, or the legacy index-record filter.

        With a :class:`QuerySpec` this is :meth:`query_page`.  The legacy
        keyword form — ``query(fingerprint=..., network=..., device=...,
        name=...)`` returning matching :class:`StoreRecord` rows oldest
        first — keeps working unchanged (a positional first string is the
        fingerprint, as before).
        """
        if isinstance(spec, QuerySpec):
            return self.query_page(spec)
        if fingerprint is None:
            fingerprint = spec
        return self._query_records(
            fingerprint=fingerprint, network=network, device=device, name=name
        )

    def _query_records(
        self,
        fingerprint: Optional[str] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[StoreRecord]:
        """Index records matching every given filter, oldest first."""
        with self._lock:
            records = sorted(self._records.values(), key=lambda r: r.sequence)
        return [
            record
            for record in records
            if (fingerprint is None or record.fingerprint == fingerprint)
            and (network is None or network in record.networks)
            and (device is None or device in record.devices)
            and (name is None or record.name == name)
        ]

    def _default_objectives(self, key: str):
        """The stored spec's campaign objectives (no point materialization)."""
        with self._lock:
            record = self._records[key]
            path = self._segments_dir / record.segment
            spec_data = None
            if path.suffix == ".col":
                block = self._block_at(path, record.offset, key)
                if block is not None:
                    spec_data = block.result_extra.get("spec")
            if spec_data is None:
                spec_data = self.get_payload(key).get("spec")
        return ExperimentSpec.from_dict(spec_data).to_campaign().objectives

    def pareto(self, spec: QuerySpec) -> ParetoPage:
        """Per-network Pareto fronts of one stored result, paginated.

        ``objectives`` defaults to the stored spec's campaign objectives;
        fronts use the legacy domination semantics over the stored row
        order.  ``limit``/``cursor`` paginate the fronts flattened in
        network first-appearance order.
        """
        with self._lock:
            key, start, binding = self._resolve(spec, "pareto")
            engine = self._engine_for(key)
            segment = self._records[key].segment
        default_objectives = (
            self._default_objectives(key) if spec.objectives is None else ()
        )
        objectives, fronts, total, next_start = pareto_rows(
            engine, spec, default_objectives, start, spec.limit
        )
        next_cursor = (
            encode_cursor(key, segment, next_start, binding)
            if next_start is not None
            else None
        )
        return ParetoPage(
            key=key,
            objectives=objectives,
            fronts=fronts,
            total=total,
            next_cursor=next_cursor,
        )

    def best(self, spec: QuerySpec) -> BestResult:
        """The single best row of one stored result by ``spec.metric``."""
        with self._lock:
            key, _start, _binding = self._resolve(spec, "best")
            engine = self._engine_for(key)
        row, value = best_row(engine, spec)
        assert spec.metric is not None  # best_row raised otherwise
        return BestResult(key=key, metric=spec.metric, value=value, row=row)

    def find(self, fingerprint: str) -> Optional[StoreRecord]:
        """Newest index record whose spec fingerprint matches, if any.

        The resumption primitive: shard and campaign specs have
        deterministic fingerprints, so "has this search already been
        evaluated?" is one index lookup, no payload reads.
        """
        with self._lock:
            matches = [
                record
                for record in self._records.values()
                if record.fingerprint == fingerprint
            ]
        if not matches:
            return None
        return max(matches, key=lambda record: record.sequence)

    def find_many(self, fingerprints) -> Dict[str, StoreRecord]:
        """Newest record per matching fingerprint, in one index pass.

        The bulk form of :meth:`find` — a job's whole shard plan resolves
        in a single scan under one lock acquisition instead of one scan
        per shard.  Fingerprints with no stored record are absent from the
        returned mapping.
        """
        wanted = set(fingerprints)
        found: Dict[str, StoreRecord] = {}
        with self._lock:
            for record in self._records.values():
                if record.fingerprint not in wanted:
                    continue
                best = found.get(record.fingerprint)
                if best is None or record.sequence > best.sequence:
                    found[record.fingerprint] = record
        return found

    def latest(
        self,
        fingerprint: Optional[str] = None,
        network: Optional[str] = None,
        device: Optional[str] = None,
        name: Optional[str] = None,
    ) -> Optional[CampaignResult]:
        """The most recently stored result matching the filters, if any."""
        matches = self._query_records(
            fingerprint=fingerprint, network=network, device=device, name=name
        )
        if not matches:
            return None
        return self.get(matches[-1].key)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def _gather_sources(self) -> Tuple[List[Tuple[dict, Any]], int]:
        """Collect the newest source of every live record, plus drop count.

        Each source is ``(meta, locator)`` where the locator rereads the
        record's payload/bytes from its current segment; sources are
        returned oldest sequence first.
        """
        by_key: Dict[str, Tuple[dict, Any]] = {}
        dropped = 0
        for path in self._segment_paths():
            if path.suffix == ".col":
                count, end = _columnar.segment_extent(path)
                if end < path.stat().st_size:
                    dropped += 1  # torn block tail
                for offset, meta in self._scan_metas(path):
                    if meta.get("key") in by_key:
                        dropped += 1
                    by_key[meta["key"]] = (meta, (path, offset))
            else:
                raw_lines = [
                    line for line in path.read_text().splitlines() if line.strip()
                ]
                parsed = list(self._scan_segment(path))
                dropped += len(raw_lines) - len(parsed)  # torn/foreign lines
                for _offset, envelope in parsed:
                    key = envelope.get("meta", {}).get("key")
                    if key in by_key:
                        dropped += 1
                    by_key[key] = (envelope["meta"], envelope["result"])
        ordered = sorted(by_key.values(), key=lambda source: source[0]["sequence"])
        return ordered, dropped

    def _source_blob(self, meta: dict, locator) -> bytes:
        """Re-encode one gathered source in the store's current format."""
        if self.format == "columnar":
            if isinstance(locator, tuple):
                # Columnar block staying columnar: copy the bytes verbatim
                # (the block is position-independent), no re-encode.
                return _columnar.read_block_bytes(*locator)
            return _columnar.encode_block(meta, locator)
        if isinstance(locator, tuple):
            payload = _columnar.ColumnarBlock.read_at(*locator).payload()
        else:
            payload = locator
        envelope = {"schema": ENVELOPE_SCHEMA, "meta": meta, "result": payload}
        return (json.dumps(envelope, separators=(",", ":")) + "\n").encode()

    def compact(self) -> Dict[str, int]:
        """Rewrite the segments keeping only live records.

        Re-scans the segments first (so records a crashed ``put`` left
        un-indexed are recovered, never dropped), keeps the newest record
        per key, drops superseded duplicates and torn tails, renumbers
        segments from 1 — in the store's *current* format, so compacting
        after :meth:`migrate` converts legacy JSONL segments — and
        rewrites the index.  Returns ``{"kept": n, "dropped": m}``.

        Safe on a live store, including while readers hold memory-mapped
        blocks: new segments are written to the side and promoted with
        atomic renames, and old segments are *moved aside* into
        ``segments/.trash`` (then unlinked best-effort) instead of being
        truncated in place — an open map keeps reading the old inode's
        consistent bytes.  A crash at any point leaves every live record
        on disk under a ``segment-*`` name, worst case with superseded
        duplicates, which the next rebuild/compact resolves.
        """
        with self._lock:
            # Liveness is decided from the segments themselves, not the
            # possibly-stale in-memory index.
            self.rebuild_index()
            ordered, dropped = self._gather_sources()

            old_paths = self._segment_paths()
            suffix = self._segment_suffix()
            new_records: Dict[str, StoreRecord] = {}
            written: List[Path] = []
            for start in range(0, len(ordered), self.segment_max_records):
                number = len(written) + 1
                path = self._segments_dir / f"segment-{number:06d}{suffix}.compact"
                with path.open("wb") as handle:
                    for meta, locator in ordered[start : start + self.segment_max_records]:
                        offset = handle.tell()
                        handle.write(self._source_blob(meta, locator))
                        record = StoreRecord.from_dict(
                            {
                                **meta,
                                "segment": path.name.replace(".compact", ""),
                                "offset": offset,
                            }
                        )
                        new_records[record.key] = record
                written.append(path)
            # Promote the rewritten segments FIRST (os.replace atomically
            # overwrites same-named old segments), then move the remaining
            # old segments into .trash and only unlink them from there —
            # readers holding memory maps keep the old inodes alive.
            final_names = set()
            for path in written:
                final = path.with_name(path.name.replace(".compact", ""))
                os.replace(path, final)
                final_names.add(final.name)
            self._trash_dir.mkdir(exist_ok=True)
            for path in old_paths:
                if path.name not in final_names:
                    os.replace(path, self._trash_dir / path.name)
            self._drain_trash()
            self._records = new_records
            self._engines.clear()
            self._write_index()
            self._reset_append_cursor()
            return {"kept": len(new_records), "dropped": dropped}

    def migrate(self, format: str = "columnar") -> Dict[str, Any]:
        """Rewrite every segment into ``format`` (default: columnar).

        The JSONL→columnar import path: flips the store's append format
        and compacts, which re-encodes all segments.  Payloads round-trip
        bit-identically (strictly-encoded columns, or opaque JSON bodies
        for points the strict encoder cannot represent).  Migrating to
        the current format is a plain compact.  Returns the compaction
        stats plus the target format.
        """
        if format not in ("columnar", "jsonl"):
            raise ValueError(f"unknown store format {format!r}")
        if format == "columnar" and _columnar is None:
            raise ValueError("columnar store format requires numpy")
        with self._lock:
            self.format = format
            stats: Dict[str, Any] = dict(self.compact())
            stats["format"] = format
            return stats

    def __repr__(self) -> str:
        return (
            f"ResultStore(root={str(self.root)!r}, results={len(self)}, "
            f"format={self.format!r})"
        )

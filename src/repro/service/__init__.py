"""Persistent result store + batching design-query server.

The layers below this package compute; this package *serves*.  It turns
evaluated campaigns into long-lived, queryable artifacts and single
design-point questions into micro-batched vectorized evaluations:

* :mod:`repro.service.store` — :class:`ResultStore`, an append-only,
  content-addressed store of campaign results (binary columnar segments
  memory-mapped for zero-copy vectorized queries, with JSONL retained as
  an import/migration path, plus a rebuildable index keyed by spec
  fingerprint, network and device) with ``put``/``get``/``query``/
  ``pareto``/``best``/``latest``, compaction and ``migrate``;
* :mod:`repro.service.queryspec` — :class:`QuerySpec`, the frozen
  JSON-round-trippable description of a read (result selection, ``where``
  filters, sort, ``select`` projection, top-k, ``limit``/``cursor``
  pagination) shared verbatim by the store, the HTTP handlers and the
  client;
* :mod:`repro.service.batching` — :class:`MicroBatcher`, the scheduler
  that holds concurrent ``evaluate`` requests for a small window and
  dispatches them as one stacked :func:`repro.dse.batch.evaluate_requests`
  call (bit-identical to serial evaluation, an order of magnitude more
  throughput);
* :mod:`repro.service.jobs` — :class:`JobManager` / :class:`Job`, the
  sharded asynchronous campaign scheduler: specs split into
  per-(network, device) (and per-chunk) shards, executed on a worker
  pool, streamed into the store as they complete, resumable by shard
  fingerprint — plus :class:`Lease` / :class:`LeaseLedger`, the
  pull-based protocol that lets a remote worker fleet
  (:mod:`repro.worker`) claim, heartbeat and complete those shards over
  HTTP, with expiry-based re-queue when a worker dies;
* :mod:`repro.service.server` — :class:`ResultServer` / :func:`serve`,
  the stdlib-only asyncio HTTP server behind ``python -m repro serve``
  (``/v1/query``, ``/v1/pareto``, ``/v1/best``, ``/v1/evaluate``,
  ``/v1/campaign``, ``/v1/jobs``, plus ``/metrics`` Prometheus text and
  its JSON twin ``/v1/stats`` from :mod:`repro.obs`);
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin
  synchronous client used by tests, benchmarks and CI.

Every request carries a trace id (minted or propagated via the
``X-Repro-Trace-Id`` header) and the admission queues are bounded when
the server is started with ``max_pending_evals`` / ``max_pending_jobs``
— saturation answers ``429`` with a ``Retry-After`` hint
(:class:`BatcherSaturated`, :class:`JobQueueFull`).

Quickstart::

    python -m repro serve --store .repro-store --port 8787

    >>> from repro.service import ServiceClient
    >>> client = ServiceClient(port=8787)
    >>> receipt = client.submit_campaign(spec)       # computed once, stored
    >>> fronts = client.pareto(key=receipt["key"])   # served from the store
    >>> point = client.evaluate("vgg16-d", m=4, multiplier_budget=512)
"""

from .batching import BatcherSaturated, BatcherStats, MicroBatcher
from .client import InfeasibleDesignError, ServiceClient, ServiceError
from .jobs import (
    Job,
    JobManager,
    JobQueueFull,
    Lease,
    LeaseLedger,
    ShardPlan,
    execute_shard,
    plan_shards,
)
from .queryspec import BestResult, ParetoPage, QueryPage, QuerySpec
from .server import ApiError, ResultServer, serve
from .store import ResultStore, StoreRecord, result_key

__all__ = [
    "BatcherSaturated",
    "BatcherStats",
    "MicroBatcher",
    "ServiceClient",
    "ServiceError",
    "InfeasibleDesignError",
    "ApiError",
    "ResultServer",
    "serve",
    "ResultStore",
    "StoreRecord",
    "result_key",
    "QuerySpec",
    "QueryPage",
    "ParetoPage",
    "BestResult",
    "Job",
    "JobManager",
    "JobQueueFull",
    "Lease",
    "LeaseLedger",
    "ShardPlan",
    "execute_shard",
    "plan_shards",
]

"""repro — Design space exploration and optimization of Winograd fast
convolution engines for CNNs on FPGAs.

A complete Python reproduction of Ahmad & Pasha, "Towards Design Space
Exploration and Optimization of Fast Algorithms for Convolutional Neural
Networks (CNNs) on FPGAs", DATE 2019.

Subpackages
-----------
``repro.winograd``
    Winograd minimal-filtering algorithms: exact transform generation,
    canonical matrices, tiled fast convolution, operator counting.
``repro.nn``
    CNN workload substrate: layer/network descriptors (VGG-16, AlexNet,
    ResNet), reference convolutions, functional forward passes.
``repro.hw``
    FPGA hardware models: devices, PE/engine resource estimation, power,
    frequency, buffers.
``repro.sim``
    Cycle-level behavioural simulator of the proposed engine.
``repro.core``
    The paper's contribution: complexity/throughput models (Eqs. 4-10),
    design-space exploration, Pareto/roofline analysis, proposed designs and
    comparison tables.
``repro.baselines``
    Podili et al. [3], Qiu et al. [12] and spatial-convolution baselines,
    plus the paper's published table/figure values.
``repro.reporting``
    Text tables, CSV export and ASCII figures used by the benchmark harness.

Quickstart
----------
>>> from repro import vgg16_d, proposed_designs
>>> designs = proposed_designs(vgg16_d())
>>> round(designs[-1].throughput_gops, 1)
1094.4
"""

from .core import (
    DesignPoint,
    HeadlineClaims,
    SweepSpec,
    best_by,
    complexity_breakdown,
    evaluate_design,
    explore,
    headline_claims,
    ideal_throughput_gops,
    multiplication_complexity,
    network_latency,
    optimize,
    pareto_front,
    performance_table,
    proposed_designs,
    resource_table,
    roofline_report,
    sweep_multiplier_budgets,
    sweep_tile_sizes,
    transform_complexity,
)
from .hw import EngineConfig, FpgaDevice, PowerModel, build_engine, virtex7_485t
from .nn import Network, alexnet, resnet18, vgg, vgg16_d
from .sim import EngineSimConfig, WinogradEngineSim
from .winograd import WinogradConv2D, get_transform, winograd_conv2d

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # winograd
    "get_transform",
    "WinogradConv2D",
    "winograd_conv2d",
    # nn
    "Network",
    "vgg",
    "vgg16_d",
    "alexnet",
    "resnet18",
    # hw
    "FpgaDevice",
    "virtex7_485t",
    "EngineConfig",
    "build_engine",
    "PowerModel",
    # sim
    "EngineSimConfig",
    "WinogradEngineSim",
    # core
    "multiplication_complexity",
    "transform_complexity",
    "complexity_breakdown",
    "network_latency",
    "ideal_throughput_gops",
    "DesignPoint",
    "evaluate_design",
    "SweepSpec",
    "explore",
    "sweep_tile_sizes",
    "sweep_multiplier_budgets",
    "best_by",
    "pareto_front",
    "roofline_report",
    "optimize",
    "proposed_designs",
    "performance_table",
    "resource_table",
    "headline_claims",
    "HeadlineClaims",
]

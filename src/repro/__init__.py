"""repro — Design space exploration and optimization of Winograd fast
convolution engines for CNNs on FPGAs.

A complete Python reproduction of Ahmad & Pasha, "Towards Design Space
Exploration and Optimization of Fast Algorithms for Convolutional Neural
Networks (CNNs) on FPGAs", DATE 2019.

Subpackages
-----------
``repro.winograd``
    Winograd minimal-filtering algorithms: exact transform generation,
    canonical matrices, tiled fast convolution, operator counting.
``repro.nn``
    CNN workload substrate: layer/network descriptors (VGG-16, AlexNet,
    ResNet), a named network registry, reference convolutions, functional
    forward passes.
``repro.hw``
    FPGA hardware models: devices, PE/engine resource estimation, power,
    frequency, buffers.
``repro.sim``
    Cycle-level behavioural simulator of the proposed engine.
``repro.core``
    The paper's contribution: complexity/throughput models (Eqs. 4-10),
    design-space exploration, Pareto/roofline analysis, proposed designs and
    comparison tables.
``repro.dse``
    Campaign-scale evaluation engine: a memoised evaluation layer, a
    chunked process-pool executor with a serial fallback, and
    ``Campaign``/``CampaignResult`` aggregation (per-network Pareto fronts,
    best-by-metric picks, comparison tables).
``repro.experiments``
    The declarative experiment layer: ``ExperimentSpec`` (a frozen,
    JSON-round-trippable description of an exploration), pluggable
    ``SearchStrategy`` solvers (exhaustive grid, seeded random subsampling,
    Pareto-front refinement), result persistence
    (``CampaignResult.save``/``load``) and the ``python -m repro`` CLI.
``repro.baselines``
    Podili et al. [3], Qiu et al. [12] and spatial-convolution baselines,
    plus the paper's published table/figure values.
``repro.reporting``
    Text tables, CSV export, campaign summaries and ASCII figures used by
    the benchmark harness.

Quickstart
----------
>>> from repro import vgg16_d, proposed_designs
>>> designs = proposed_designs(vgg16_d())
>>> round(designs[-1].throughput_gops, 1)
1094.4

Experiment quickstart — experiments are declarative artifacts: describe
the search as data, pick a solver by name, run it, persist the result:

>>> from repro import ExperimentSpec, SweepSpec, frequency_range, run_experiment
>>> spec = ExperimentSpec(
...     networks=("vgg16-d", "alexnet", "resnet18"),
...     devices=("xc7vx485t", "xc7vx690t"),
...     sweeps=(SweepSpec(m_values=(2, 3, 4, 5, 6),
...                       multiplier_budgets=(512, 1024),
...                       frequencies_mhz=frequency_range(150, 250, 50)),),
...     strategy="pareto-refine",            # or "grid", "random", ...
... )
>>> spec == ExperimentSpec.from_dict(spec.to_dict())   # lossless artifact
True
>>> result = run_experiment(spec)
>>> fronts = result.pareto_fronts()          # per-network Pareto fronts
>>> best = result.best("power_efficiency")   # best-by-metric pick
>>> path = result.save("result.json")        # doctest: +SKIP

The same spec runs from a file via the CLI: ``python -m repro run
spec.json -o result.json`` (see ``python -m repro --help``).  The legacy
``Campaign``/``explore`` entry points remain as thin shims over this API
with identical signatures, ordering and results.
"""

from .core import (
    DesignPoint,
    GridEntry,
    HeadlineClaims,
    SweepSpec,
    best_by,
    complexity_breakdown,
    evaluate_design,
    explore,
    frequency_range,
    headline_claims,
    ideal_throughput_gops,
    multiplication_complexity,
    network_latency,
    optimize,
    pareto_front,
    performance_table,
    proposed_designs,
    resource_table,
    roofline_report,
    sweep_multiplier_budgets,
    sweep_tile_sizes,
    transform_complexity,
)
from .dse import (
    Campaign,
    CampaignResult,
    EvaluationCache,
    ExecutorConfig,
    evaluate_design_cached,
    iter_explore,
    run_campaign,
)
from .experiments import (
    ExperimentSpec,
    GridStrategy,
    ParetoRefineStrategy,
    RandomStrategy,
    SearchStrategy,
    StrategySpec,
    get_strategy,
    known_strategies,
    load_result,
    register_strategy,
    run_experiment,
)
from .hw import (
    EngineConfig,
    FpgaDevice,
    PowerModel,
    build_engine,
    get_device,
    known_devices,
    register_device,
    virtex7_485t,
)
from .nn import (
    Network,
    alexnet,
    get_network,
    known_networks,
    register_network,
    resnet18,
    vgg,
    vgg16_d,
)
from .sim import EngineSimConfig, WinogradEngineSim
from .winograd import WinogradConv2D, get_transform, winograd_conv2d

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # winograd
    "get_transform",
    "WinogradConv2D",
    "winograd_conv2d",
    # nn
    "Network",
    "vgg",
    "vgg16_d",
    "alexnet",
    "resnet18",
    "get_network",
    "known_networks",
    "register_network",
    # hw
    "FpgaDevice",
    "virtex7_485t",
    "get_device",
    "known_devices",
    "register_device",
    "EngineConfig",
    "build_engine",
    "PowerModel",
    # sim
    "EngineSimConfig",
    "WinogradEngineSim",
    # core
    "multiplication_complexity",
    "transform_complexity",
    "complexity_breakdown",
    "network_latency",
    "ideal_throughput_gops",
    "DesignPoint",
    "evaluate_design",
    "SweepSpec",
    "GridEntry",
    "frequency_range",
    "explore",
    "sweep_tile_sizes",
    "sweep_multiplier_budgets",
    "best_by",
    "pareto_front",
    "roofline_report",
    "optimize",
    "proposed_designs",
    "performance_table",
    "resource_table",
    "headline_claims",
    "HeadlineClaims",
    # dse
    "Campaign",
    "CampaignResult",
    "EvaluationCache",
    "ExecutorConfig",
    "evaluate_design_cached",
    "iter_explore",
    "run_campaign",
    # experiments
    "ExperimentSpec",
    "StrategySpec",
    "SearchStrategy",
    "GridStrategy",
    "RandomStrategy",
    "ParetoRefineStrategy",
    "register_strategy",
    "known_strategies",
    "get_strategy",
    "run_experiment",
    "load_result",
]

"""Cycle-level simulation of the proposed Winograd convolution engine.

This is the behavioural model of the system in Fig. 7 of the paper: an image
buffer feeds one ``(m+r-1) x (m+r-1)`` input tile per clock cycle into a
*single shared* data-transform stage, whose output ``U`` fans out to ``P``
parallel PEs.  Each PE holds the filter transform ``V`` of one kernel for the
current input channel, performs the element-wise multiplication and the 2-D
inverse transform, and accumulates its ``m x m`` output tile over the ``C``
input channels.  When ``K > P`` the tile walk is repeated in ``ceil(K / P)``
kernel passes.

The simulator serves two purposes:

* **functional validation** — the values it produces are checked against the
  direct-convolution reference, proving the engine's dataflow (shared
  transform, per-PE kernels, channel accumulation) computes the right thing;
* **timing validation** — the cycle count it reports is checked against the
  analytical latency model of Eq. (9), closing the loop between the simulator
  and the design-space exploration built on that equation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..nn.layers import ConvLayer
from ..winograd.matrices import get_transform
from ..winograd.tiling import assemble_output, extract_tiles, plan_tiles
from ..winograd.toom_cook import WinogradTransform
from ..winograd.transforms import data_transform, filter_transform, inverse_transform
from .pipeline import Pipeline, PipelineStage

__all__ = ["EngineSimConfig", "SimulationStats", "SimulationResult", "WinogradEngineSim"]


@dataclass(frozen=True)
class EngineSimConfig:
    """Static configuration of the simulated engine."""

    m: int
    r: int = 3
    parallel_pes: int = 4
    frequency_mhz: float = 200.0
    data_transform_latency: int = 2
    ewise_latency: int = 3
    inverse_transform_latency: int = 2
    prefer_canonical: bool = True

    def __post_init__(self) -> None:
        if self.m < 1 or self.r < 1:
            raise ValueError("m and r must be >= 1")
        if self.parallel_pes < 1:
            raise ValueError("parallel_pes must be >= 1")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def pipeline_depth(self) -> int:
        """Total pipeline depth ``Dp`` of the simulated engine."""
        return (
            self.data_transform_latency
            + self.ewise_latency
            + self.inverse_transform_latency
        )

    @property
    def multipliers_per_pe(self) -> int:
        """Element-wise multipliers per PE: the input tile squared."""
        return (self.m + self.r - 1) ** 2

    @property
    def total_multipliers(self) -> int:
        """Multipliers across all parallel PEs."""
        return self.parallel_pes * self.multipliers_per_pe


@dataclass
class SimulationStats:
    """Cycle-level statistics collected during a run."""

    cycles: int = 0
    tiles_processed: int = 0
    kernel_passes: int = 0
    data_transforms: int = 0
    pe_operations: int = 0
    output_tiles: int = 0
    stage_occupancy: Dict[str, int] = field(default_factory=dict)

    @property
    def completed_tokens(self) -> int:
        """Alias for :attr:`output_tiles` (tile/channel tokens that completed)."""
        return self.output_tiles

    @property
    def effective_issue_rate(self) -> float:
        """Completed tile/channel tokens per cycle (1.0 for a full pipeline)."""
        if self.cycles == 0:
            return 0.0
        return self.output_tiles / self.cycles

    def latency_seconds(self, frequency_mhz: float) -> float:
        """Wall-clock latency of the run at ``frequency_mhz``."""
        return self.cycles / (frequency_mhz * 1e6)


@dataclass
class SimulationResult:
    """Output feature map plus statistics for one simulated layer."""

    output: np.ndarray
    stats: SimulationStats
    config: EngineSimConfig

    def latency_ms(self) -> float:
        """Simulated wall-clock latency at the configured frequency."""
        return self.stats.latency_seconds(self.config.frequency_mhz) * 1e3


class WinogradEngineSim:
    """Cycle-level behavioural simulator of the proposed engine."""

    def __init__(self, config: EngineSimConfig) -> None:
        self.config = config
        self.transform: WinogradTransform = get_transform(
            config.m, config.r, config.prefer_canonical
        )

    # ------------------------------------------------------------------ #
    def analytical_cycles(self, layer: ConvLayer) -> float:
        """Eq. (9) cycle count for ``layer`` on this engine configuration.

        Uses the actual tile grid (ceil of partial tiles) so it can be
        compared one-to-one with the simulated count.
        """
        grid = plan_tiles(layer.height, layer.width, self.config.m, self.config.r, layer.padding)
        kernel_passes = -(-layer.out_channels // self.config.parallel_pes)
        issue_cycles = (
            layer.batch * grid.tile_count * layer.in_channels * kernel_passes
        )
        return issue_cycles + self.config.pipeline_depth - 1

    # ------------------------------------------------------------------ #
    def run_layer(
        self,
        layer: ConvLayer,
        feature_map: np.ndarray,
        kernels: np.ndarray,
        functional: bool = True,
    ) -> SimulationResult:
        """Simulate one convolutional layer.

        Parameters
        ----------
        layer:
            Layer descriptor (shapes, padding); must match the tensors.
        feature_map:
            Input tensor ``(N, C, H, W)``.
        kernels:
            Kernel bank ``(K, C, r, r)``.
        functional:
            When ``True`` the datapath values are computed and assembled into
            the output tensor; when ``False`` only timing is simulated (the
            output array is returned empty).
        """
        config = self.config
        feature_map = np.asarray(feature_map, dtype=np.float64)
        kernels = np.asarray(kernels, dtype=np.float64)
        batch, channels, height, width = feature_map.shape
        num_kernels = kernels.shape[0]
        if (channels, height, width) != (layer.in_channels, layer.height, layer.width):
            raise ValueError("feature map shape does not match the layer descriptor")
        if kernels.shape != (layer.out_channels, layer.in_channels, layer.kernel_size, layer.kernel_size):
            raise ValueError("kernel bank shape does not match the layer descriptor")
        if layer.stride != 1:
            raise ValueError("the Winograd engine supports stride-1 layers only")

        grid = plan_tiles(height, width, config.m, config.r, layer.padding)
        tiles = extract_tiles(feature_map, grid, padding=layer.padding)  # (N, C, ty, tx, t, t)

        # Off-line filter transforms (kernel buffers V of Fig. 7).
        transformed_kernels = filter_transform(self.transform, kernels)  # (K, C, n, n)

        kernel_passes = -(-num_kernels // config.parallel_pes)
        stats = SimulationStats(kernel_passes=kernel_passes)

        # The three pipeline stages; payloads are dicts describing the tile.
        pipeline = Pipeline(
            [
                PipelineStage("data_transform", config.data_transform_latency),
                PipelineStage("ewise_mult", config.ewise_latency),
                PipelineStage("inverse_transform", config.inverse_transform_latency),
            ]
        )

        m = config.m
        accumulators = np.zeros(
            (batch, num_kernels, grid.tiles_y, grid.tiles_x, m, m), dtype=np.float64
        )

        def issue_order():
            """The image-buffer walk: kernel pass -> batch -> tile -> channel."""
            for kernel_pass in range(kernel_passes):
                kernel_lo = kernel_pass * config.parallel_pes
                kernel_hi = min(kernel_lo + config.parallel_pes, num_kernels)
                for image in range(batch):
                    for ty in range(grid.tiles_y):
                        for tx in range(grid.tiles_x):
                            for channel in range(channels):
                                yield (image, ty, tx, channel, kernel_lo, kernel_hi)

        def process_token(token):
            """Datapath work of one issued tile once it leaves the pipeline."""
            image, ty, tx, channel, kernel_lo, kernel_hi = token
            if not functional:
                return token
            tile = tiles[image, channel, ty, tx]
            u = data_transform(self.transform, tile)
            # All resident PEs consume the same U with their own V.
            v = transformed_kernels[kernel_lo:kernel_hi, channel]
            products = u[None, :, :] * v
            outputs = inverse_transform(self.transform, products)
            accumulators[image, kernel_lo:kernel_hi, ty, tx] += outputs
            return token

        pipeline.stages[-1].transform = process_token

        issued = 0
        for token in issue_order():
            pipeline.push(token)
            completed = pipeline.tick()
            issued += 1
            stats.data_transforms += 1
            stats.pe_operations += token[5] - token[4]
            stats.output_tiles += len(completed)
        # Drain the pipeline.
        remaining = pipeline.drain()
        stats.output_tiles += len(remaining)
        stats.cycles = pipeline.cycle
        stats.tiles_processed = issued

        if functional:
            output = assemble_output(accumulators, grid)
        else:
            output = np.zeros((batch, num_kernels, grid.output_height, grid.output_width))
        return SimulationResult(output=output, stats=stats, config=config)

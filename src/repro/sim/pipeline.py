"""Generic cycle-driven pipeline modelling.

The engine simulator needs a small, well-tested notion of a synchronous
pipeline: stages with fixed latencies through which tokens advance one step
per clock cycle, with perfect throughput of one token per cycle once the
pipeline is full (the paper's engines are fully pipelined and never stall
under the double-buffering assumption).  Tokens are opaque Python objects; a
stage may attach a transformation applied when the token leaves it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Tuple

__all__ = ["PipelineStage", "Pipeline"]


@dataclass
class PipelineStage:
    """One pipeline stage with a fixed latency in cycles.

    Attributes
    ----------
    name:
        Stage label (shows up in traces).
    latency:
        Number of cycles a token spends in the stage (>= 1).
    transform:
        Optional callable applied to the token payload when it exits.
    """

    name: str
    latency: int = 1
    transform: Optional[Callable[[Any], Any]] = None
    _in_flight: Deque[Tuple[int, Any]] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("stage latency must be >= 1")

    def accept(self, cycle: int, token: Any) -> None:
        """Accept a token at ``cycle`` (the engines never back-pressure)."""
        self._in_flight.append((cycle + self.latency, token))

    def retire(self, cycle: int) -> List[Any]:
        """Return (and remove) tokens whose latency elapsed at ``cycle``."""
        ready: List[Any] = []
        while self._in_flight and self._in_flight[0][0] <= cycle:
            _, token = self._in_flight.popleft()
            if self.transform is not None:
                token = self.transform(token)
            ready.append(token)
        return ready

    @property
    def occupancy(self) -> int:
        """Tokens currently in flight in the stage."""
        return len(self._in_flight)


class Pipeline:
    """A linear chain of :class:`PipelineStage` objects.

    Tokens are injected with :meth:`push` (at most one per cycle, matching
    the single shared data-transform front end) and retrieved from
    :meth:`tick`, which advances the whole pipeline by one clock cycle.
    """

    def __init__(self, stages: List[PipelineStage]) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        self.stages = stages
        self.cycle = 0
        self._completed: List[Any] = []

    @property
    def depth(self) -> int:
        """Total pipeline latency in cycles."""
        return sum(stage.latency for stage in self.stages)

    @property
    def in_flight(self) -> int:
        """Tokens currently anywhere inside the pipeline."""
        return sum(stage.occupancy for stage in self.stages)

    def push(self, token: Any) -> None:
        """Inject a token into the first stage at the current cycle."""
        self.stages[0].accept(self.cycle, token)

    def tick(self) -> List[Any]:
        """Advance one clock cycle; return tokens that completed this cycle."""
        self.cycle += 1
        moving = None
        for index, stage in enumerate(self.stages):
            ready = stage.retire(self.cycle)
            if moving:
                for token in moving:
                    stage.accept(self.cycle, token)
            moving = ready
        completed = moving or []
        self._completed.extend(completed)
        return completed

    def drain(self, max_cycles: Optional[int] = None) -> List[Any]:
        """Tick until the pipeline is empty; return everything that completed."""
        drained: List[Any] = []
        limit = max_cycles if max_cycles is not None else self.depth + self.in_flight + 4
        for _ in range(limit):
            if self.in_flight == 0:
                break
            drained.extend(self.tick())
        return drained

"""Cross-validation between the cycle-level simulator and the analytical models.

Closes the loop that the paper leaves implicit: the latencies of Table II come
from Eq. (9), and the simulator executes the actual dataflow cycle by cycle.
:func:`validate_layer` runs both for a layer and reports functional error and
cycle-count agreement; :func:`validate_configuration` sweeps several layer
shapes for one engine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..nn.layers import ConvLayer
from ..nn.reference import direct_conv2d
from .engine_sim import EngineSimConfig, SimulationResult, WinogradEngineSim

__all__ = ["LayerValidation", "validate_layer", "validate_configuration"]


@dataclass(frozen=True)
class LayerValidation:
    """Result of validating one layer on one engine configuration."""

    layer_name: str
    m: int
    parallel_pes: int
    simulated_cycles: int
    analytical_cycles: float
    max_abs_error: float
    functional: bool

    @property
    def cycle_error_pct(self) -> float:
        """Relative disagreement between simulated and analytical cycles."""
        if self.analytical_cycles == 0:
            return 0.0
        return 100.0 * abs(self.simulated_cycles - self.analytical_cycles) / self.analytical_cycles

    @property
    def numerically_correct(self) -> bool:
        """Whether the simulated output matches the direct convolution."""
        return (not self.functional) or self.max_abs_error < 1e-8


def validate_layer(
    layer: ConvLayer,
    config: EngineSimConfig,
    seed: int = 0,
    functional: bool = True,
) -> LayerValidation:
    """Run the simulator on ``layer`` and compare against the references."""
    rng = np.random.default_rng(seed)
    feature_map = rng.standard_normal(
        (layer.batch, layer.in_channels, layer.height, layer.width)
    )
    kernels = rng.standard_normal(
        (layer.out_channels, layer.in_channels, layer.kernel_size, layer.kernel_size)
    )
    simulator = WinogradEngineSim(config)
    result: SimulationResult = simulator.run_layer(
        layer, feature_map, kernels, functional=functional
    )
    max_error = 0.0
    if functional:
        reference = direct_conv2d(feature_map, kernels, padding=layer.padding)
        max_error = float(np.abs(result.output - reference).max())
    return LayerValidation(
        layer_name=layer.name,
        m=config.m,
        parallel_pes=config.parallel_pes,
        simulated_cycles=result.stats.cycles,
        analytical_cycles=simulator.analytical_cycles(layer),
        max_abs_error=max_error,
        functional=functional,
    )


def validate_configuration(
    config: EngineSimConfig,
    layers: Optional[Sequence[ConvLayer]] = None,
    seed: int = 0,
) -> List[LayerValidation]:
    """Validate an engine configuration on a set of representative layers.

    The default layer set covers channel counts around / above the PE count,
    partial edge tiles and non-square feature maps.
    """
    if layers is None:
        layers = [
            ConvLayer("small", in_channels=3, out_channels=4, height=12, width=12, batch=1),
            ConvLayer("tall", in_channels=2, out_channels=6, height=18, width=10, batch=1),
            ConvLayer("multi_pass", in_channels=4, out_channels=9, height=8, width=8, batch=2),
        ]
    return [validate_layer(layer, config, seed=seed) for layer in layers]

"""Cycle-level simulation substrate for the Winograd convolution engine.

Provides a small synchronous-pipeline kernel, a behavioural simulator of the
paper's shared-data-transform engine (Fig. 7) and validation utilities that
tie the simulated cycle counts back to the analytical latency model (Eq. 9)
and the simulated values back to direct convolution.
"""

from .engine_sim import EngineSimConfig, SimulationResult, SimulationStats, WinogradEngineSim
from .pipeline import Pipeline, PipelineStage
from .validation import LayerValidation, validate_configuration, validate_layer

__all__ = [
    "Pipeline",
    "PipelineStage",
    "EngineSimConfig",
    "SimulationStats",
    "SimulationResult",
    "WinogradEngineSim",
    "LayerValidation",
    "validate_layer",
    "validate_configuration",
]

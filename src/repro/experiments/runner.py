"""Execution of declarative experiments: the evaluator + ``run_experiment``.

The :class:`Evaluator` is the boundary between a search strategy and the
evaluation machinery: strategies decide *which* configurations to probe,
the evaluator owns *how* a probe happens — registry resolution, the
memoising :class:`~repro.dse.cache.EvaluationCache`, feasibility filtering
and the optional process-pool executor — and keeps the bookkeeping
(evaluation counts, cache statistics) every run reports.

:func:`run_experiment` ties it together: resolve the spec's strategy, hand
it an evaluator, collect the points into a
:class:`~repro.dse.campaign.CampaignResult` (with the spec embedded for
persistence).  The legacy ``Campaign.run()``/``run_campaign`` entry points
are thin shims over the same machinery with :class:`GridStrategy`, so both
vocabularies produce byte-identical results.
"""

from __future__ import annotations

import time
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core.design_point import DesignPoint
from ..core.design_space import GridEntry, SweepSpec
from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, resolve_device
from ..nn.model import Network
from ..nn.registry import resolve_network
from ..core.pareto import ObjectiveLike
from ..dse.cache import CacheStats, EvaluationCache, global_cache, network_fingerprint
from ..dse.campaign import CampaignResult, DEFAULT_OBJECTIVES
from ..dse.engine import CacheLike, ExecutorConfig, _evaluate_entry, iter_explore
from .spec import ExperimentSpec
from .strategies import SearchStrategy, resolve_strategy

__all__ = ["Evaluator", "run_experiment"]


class Evaluator:
    """Evaluation service handed to a :class:`SearchStrategy`.

    Callable: ``evaluator(network, device, entry)`` evaluates one
    :class:`GridEntry` on one (network, device) cell — through the
    memoising cache when enabled — returning the :class:`DesignPoint`, or
    ``None`` when the configuration is infeasible and the experiment skips
    infeasible points.  ``networks``/``devices`` are the resolved objects
    (strategies should iterate these), ``sweeps`` the sweep grids and
    ``objectives`` the experiment's ``(metric, maximize)`` pairs for
    front-guided searches.

    Bulk path: :meth:`iter_grid` streams the full cross-product through
    :func:`repro.dse.engine.iter_explore`, which honours the configured
    executor (vectorized NumPy batch or process pool) — this is what
    :class:`GridStrategy` uses and is byte-identical to the legacy campaign
    engine in every mode.

    Bookkeeping: ``evaluations`` counts grid entries probed (feasible or
    not) and ``stats`` accumulates this run's cache hits/misses.
    """

    def __init__(
        self,
        networks: Sequence[Union[Network, str]],
        devices: Sequence[Union[FpgaDevice, str]],
        sweeps: Sequence[SweepSpec],
        calibration: Calibration = DEFAULT_CALIBRATION,
        skip_infeasible: bool = True,
        objectives: Sequence[ObjectiveLike] = DEFAULT_OBJECTIVES,
        cache: CacheLike = None,
        executor: Optional[ExecutorConfig] = None,
    ) -> None:
        self.networks: List[Network] = [resolve_network(network) for network in networks]
        self.devices: List[FpgaDevice] = [resolve_device(device) for device in devices]
        if not self.networks:
            raise ValueError("at least one network is required")
        if not self.devices:
            raise ValueError("at least one device is required")
        self.sweeps: Tuple[SweepSpec, ...] = tuple(sweeps)
        if not self.sweeps:
            raise ValueError("at least one sweep is required")
        self.calibration = calibration
        self.skip_infeasible = skip_infeasible
        self.objectives: Tuple[ObjectiveLike, ...] = tuple(objectives)
        self.cache: CacheLike = cache
        self.executor = executor
        self.stats = CacheStats()
        self.evaluations = 0
        self._use_cache = cache is not False
        self._serving_cache = (
            cache if isinstance(cache, EvaluationCache) else global_cache()
        ) if self._use_cache else False
        # Fingerprints memoise lazily on first per-point probe: grid-only
        # runs (the legacy Campaign path) never need them here, and
        # iter_explore computes its own.
        self._fingerprints: dict = {}

    # ------------------------------------------------------------------ #
    def grid_entries(self) -> List[GridEntry]:
        """Concatenated grid entries of every sweep, canonical order."""
        return [entry for sweep in self.sweeps for entry in sweep.configurations()]

    @property
    def grid_size(self) -> int:
        """Total configurations in the full cross-product."""
        per_cell = sum(sweep.size for sweep in self.sweeps)
        return len(self.networks) * len(self.devices) * per_cell

    # ------------------------------------------------------------------ #
    def __call__(
        self,
        network: Union[Network, str],
        device: Union[FpgaDevice, str],
        entry: GridEntry,
    ) -> Optional[DesignPoint]:
        network = resolve_network(network)
        device = resolve_device(device)
        fingerprint = None
        if self._use_cache:
            fingerprint = self._fingerprints.get(id(network))
            if fingerprint is None:
                fingerprint = network_fingerprint(network)
                # Only memoise the experiment's own resolved networks: a
                # name passed directly resolves to a fresh object per call,
                # and keying those by id would grow the memo unboundedly.
                if any(network is known for known in self.networks):
                    self._fingerprints[id(network)] = fingerprint
        self.evaluations += 1
        if self._use_cache:
            before = self._serving_cache.total
        point = _evaluate_entry(
            network,
            device,
            self.calibration,
            entry,
            self.skip_infeasible,
            self._serving_cache,
            fingerprint,
        )
        if self._use_cache:
            delta = self._serving_cache.total.delta_since(before)
            self.stats.hits += delta.hits
            self.stats.misses += delta.misses
        return point

    def iter_grid(self) -> Iterator[DesignPoint]:
        """Stream the full grid through the campaign engine (executor-aware).

        The whole grid is accounted to ``evaluations`` when consumption
        starts: this path schedules every entry (chunked ahead of time in
        process mode), so a partially consumed stream still reports the
        scheduled grid, not the subset drained.  Strategies that probe
        selectively should call the evaluator per entry instead.
        """
        self.evaluations += self.grid_size
        yield from iter_explore(
            self.networks,
            self.sweeps,
            devices=self.devices,
            calibration=self.calibration,
            skip_infeasible=self.skip_infeasible,
            cache=self.cache,
            executor=self.executor,
            stats_out=self.stats,
        )


def run_experiment(
    spec: ExperimentSpec,
    cache: CacheLike = None,
    executor: Optional[ExecutorConfig] = None,
    strategy: Optional[SearchStrategy] = None,
) -> CampaignResult:
    """Execute a declarative experiment and aggregate the results.

    The spec's strategy (grid / random / pareto-refine / any registered
    name) decides which configurations are probed; evaluation is memoised
    through the process-wide cache unless the spec (or the ``cache``
    override) disables it.

    Parameters
    ----------
    cache:
        Overrides the spec's ``cache`` setting: an
        :class:`~repro.dse.cache.EvaluationCache` to memoise into,
        ``False`` to disable caching, ``None`` to follow the spec.
    executor:
        Overrides the spec's executor (used by the grid strategy's bulk
        path; per-point strategies evaluate serially).
    strategy:
        Overrides the spec's strategy with a concrete instance — handy for
        strategies that are not (yet) registered by name.

    Returns the same :class:`~repro.dse.campaign.CampaignResult` the legacy
    campaign API produces, with ``result.spec`` set so
    ``result.save(path)`` persists a fully re-runnable artifact.
    """
    if not isinstance(spec, ExperimentSpec):
        raise TypeError(f"expected an ExperimentSpec, got {type(spec).__name__}")
    solver = strategy if strategy is not None else resolve_strategy(spec.strategy)
    if cache is None:
        cache = None if spec.cache else False
    evaluator = Evaluator(
        networks=spec.networks,
        devices=spec.devices,
        sweeps=spec.sweeps,
        calibration=spec.calibration,
        skip_infeasible=spec.skip_infeasible,
        objectives=spec.objectives,
        cache=cache,
        executor=executor if executor is not None else spec.executor,
    )
    started = time.perf_counter()
    points = list(solver.search(spec, evaluator))
    elapsed = time.perf_counter() - started
    return CampaignResult(
        campaign=spec.to_campaign(),
        points=points,
        evaluations=evaluator.evaluations,
        elapsed_seconds=elapsed,
        cache_stats=evaluator.stats,
        spec=spec,
    )

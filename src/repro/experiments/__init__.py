"""Declarative experiments: specs, pluggable search strategies, persistence.

This subsystem makes an exploration *experiment* a first-class artifact,
separate from the solver that executes it:

* :mod:`repro.experiments.spec` — :class:`ExperimentSpec`, the frozen,
  validated, fully declarative description of an experiment (networks and
  devices by registry name, sweep grids, strategy, objectives/metrics,
  calibration, executor/cache settings) with a lossless JSON round-trip;
* :mod:`repro.experiments.strategies` — the :class:`SearchStrategy`
  protocol and the built-in solvers: exhaustive :class:`GridStrategy`
  (byte-identical to the legacy ``Campaign.run()``), seeded
  :class:`RandomStrategy` subsampling, and :class:`ParetoRefineStrategy`
  (coarse pass + front-neighbourhood refinement — near-identical Pareto
  fronts for materially fewer evaluations);
* :mod:`repro.experiments.runner` — :func:`run_experiment` and the
  :class:`Evaluator` strategies probe through (caching, feasibility,
  executors, bookkeeping);
* :mod:`repro.experiments.persistence` — versioned JSON save/load of
  evaluated results with the spec embedded (``CampaignResult.save`` /
  ``load``), enabling resume and re-analysis without re-evaluation;
* :mod:`repro.experiments.cli` — the ``python -m repro`` command line
  (``run`` / ``report`` / ``list``).

Quickstart — describe, run, persist, reload:

>>> from repro.experiments import ExperimentSpec, run_experiment
>>> spec = ExperimentSpec(
...     networks=("vgg16-d", "alexnet"),
...     devices=("xc7vx485t",),
...     strategy="pareto-refine",
... )
>>> result = run_experiment(spec)
>>> saved = result.save("result.json")            # doctest: +SKIP
>>> fronts = result.pareto_fronts()
"""

from .persistence import (
    RESULT_SCHEMA,
    load_result,
    point_from_dict,
    point_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
)
from .runner import Evaluator, run_experiment
from .spec import EXPERIMENT_SCHEMA, ExperimentSpec, StrategySpec
from .strategies import (
    STRATEGIES,
    GridStrategy,
    ParetoRefineStrategy,
    RandomStrategy,
    SearchStrategy,
    get_strategy,
    known_strategies,
    register_strategy,
    resolve_strategy,
)

__all__ = [
    "EXPERIMENT_SCHEMA",
    "RESULT_SCHEMA",
    "ExperimentSpec",
    "StrategySpec",
    "SearchStrategy",
    "GridStrategy",
    "RandomStrategy",
    "ParetoRefineStrategy",
    "STRATEGIES",
    "register_strategy",
    "known_strategies",
    "get_strategy",
    "resolve_strategy",
    "Evaluator",
    "run_experiment",
    "point_to_dict",
    "point_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]

"""Pluggable search strategies over a declarative experiment's design space.

A :class:`SearchStrategy` decides *which* grid configurations get evaluated
and in what order; the evaluation itself (caching, feasibility, executors)
lives behind the :class:`~repro.experiments.runner.Evaluator` handed to
``search``.  The protocol is deliberately tiny —

``search(spec, evaluate) -> iterator of DesignPoints``

— so a new solver (simulated annealing, Bayesian optimisation, a service
backend) plugs in by registering one class:

* :class:`GridStrategy` — exhaustive enumeration, byte-identical to the
  legacy ``Campaign.run()`` results (same points, same order);
* :class:`RandomStrategy` — seeded subsampling of huge grids, preserving
  canonical ordering of the chosen entries;
* :class:`ParetoRefineStrategy` — a coarse strided pass over every sweep
  axis, then iterative evaluation of the full-grid neighbourhood of the
  current Pareto front: near-identical fronts for materially fewer
  evaluations (``benchmarks/bench_strategies.py`` quantifies it).

Strategies resolve by name through :func:`register_strategy` /
:func:`get_strategy`, so experiment specs can reference them declaratively.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from ..core.design_point import DesignPoint
from ..core.design_space import GridEntry, SweepSpec
from ..core.pareto import pareto_front

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import Evaluator
    from .spec import ExperimentSpec, StrategySpec

__all__ = [
    "SearchStrategy",
    "GridStrategy",
    "RandomStrategy",
    "ParetoRefineStrategy",
    "STRATEGIES",
    "register_strategy",
    "known_strategies",
    "get_strategy",
    "resolve_strategy",
]


@runtime_checkable
class SearchStrategy(Protocol):
    """Protocol every search strategy implements.

    ``spec`` is the declarative experiment (``None`` when driven through the
    legacy ``Campaign`` shim); ``evaluate`` is the experiment's
    :class:`~repro.experiments.runner.Evaluator` — call it with
    ``(network, device, entry)`` for one configuration (``None`` means the
    entry was infeasible and skipped), or use its bulk helpers
    (``iter_grid``, ``grid_entries``) and resolved ``networks`` /
    ``devices`` / ``sweeps`` / ``objectives`` views.
    """

    def search(
        self, spec: "Optional[ExperimentSpec]", evaluate: "Evaluator"
    ) -> Iterator[DesignPoint]:
        """Yield the design points this strategy chooses to evaluate."""
        ...


@dataclass(frozen=True)
class GridStrategy:
    """Exhaustive enumeration of the full grid in canonical order.

    Delegates to the evaluator's streaming grid walk, which routes through
    the same cached (and optionally process-parallel) engine the legacy
    ``Campaign.run()`` used — results are byte-identical to it.
    """

    def search(
        self, spec: "Optional[ExperimentSpec]", evaluate: "Evaluator"
    ) -> Iterator[DesignPoint]:
        """Stream the full grid through the executor-aware bulk path."""
        return evaluate.iter_grid()


@dataclass(frozen=True)
class RandomStrategy:
    """Seeded uniform subsample of the grid entries.

    Samples ``samples`` distinct sweep configurations (without replacement;
    the whole grid when it is smaller) and evaluates the *same* subset for
    every (network, device) cell, preserving canonical entry order — so runs
    are deterministic for a given seed and per-network results stay
    comparable.
    """

    samples: int = 64
    seed: int = 2019

    def __post_init__(self) -> None:
        if not isinstance(self.samples, int) or isinstance(self.samples, bool) or self.samples < 1:
            raise ValueError(f"samples must be an integer >= 1, got {self.samples!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")

    def search(
        self, spec: "Optional[ExperimentSpec]", evaluate: "Evaluator"
    ) -> Iterator[DesignPoint]:
        """Evaluate the seeded entry subsample on every cell, grid order."""
        entries = evaluate.grid_entries()
        if self.samples >= len(entries):
            chosen = list(entries)
        else:
            rng = random.Random(self.seed)
            indexes = sorted(rng.sample(range(len(entries)), self.samples))
            chosen = [entries[index] for index in indexes]
        for network in evaluate.networks:
            for device in evaluate.devices:
                for entry in chosen:
                    point = evaluate(network, device, entry)
                    if point is not None:
                        yield point


def _coarse_indexes(length: int, stride: int) -> List[int]:
    """Strided axis subsample that always keeps the first and last value."""
    if length == 0:
        return []
    return sorted(set(range(0, length, stride)) | {length - 1})


def _sweep_axes(sweep: SweepSpec) -> Tuple[tuple, ...]:
    """The five grid axes of a sweep in canonical nesting order."""
    return (
        tuple(sweep.m_values),
        tuple(sweep.effective_r_values),
        tuple(sweep.multiplier_budgets),
        tuple(sweep.frequencies_mhz),
        tuple(sweep.shared_data_transform),
    )


def _entry_at(axes: Tuple[tuple, ...], index: Tuple[int, ...]) -> GridEntry:
    m, r, budget, frequency, shared = (axis[i] for axis, i in zip(axes, index))
    return GridEntry(m, r, budget, frequency, shared)


@dataclass(frozen=True)
class ParetoRefineStrategy:
    """Coarse grid pass, then refinement around the current Pareto front.

    Per (network, device) cell and per sweep: evaluate a strided subsample
    of every axis (stride ``coarse``; first and last values always
    included), compute the Pareto front on the experiment's objectives,
    then repeatedly evaluate every not-yet-probed full-grid neighbour
    within ``neighborhood`` index steps of a front member until the front
    stops moving (or ``max_rounds`` is hit).  Points are emitted in
    canonical grid order per cell, so output ordering is deterministic.

    With smooth objective landscapes (the paper's throughput / efficiency
    trade-offs are monotone along most axes) this reaches the exhaustive
    front — or lands within a small tolerance of it — while probing a
    fraction of the grid; ``benchmarks/bench_strategies.py`` asserts both.
    """

    coarse: int = 2
    neighborhood: int = 1
    max_rounds: int = 8

    def __post_init__(self) -> None:
        for label, value in (
            ("coarse", self.coarse),
            ("neighborhood", self.neighborhood),
            ("max_rounds", self.max_rounds),
        ):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValueError(f"{label} must be an integer >= 1, got {value!r}")

    def search(
        self, spec: "Optional[ExperimentSpec]", evaluate: "Evaluator"
    ) -> Iterator[DesignPoint]:
        """Coarse pass + Pareto-front neighbourhood refinement per cell."""
        objectives = evaluate.objectives
        for network in evaluate.networks:
            for device in evaluate.devices:
                for sweep in evaluate.sweeps:
                    yield from self._refine_cell(network, device, sweep, objectives, evaluate)

    # ------------------------------------------------------------------ #
    def _refine_cell(
        self, network, device, sweep: SweepSpec, objectives, evaluate: "Evaluator"
    ) -> Iterator[DesignPoint]:
        axes = _sweep_axes(sweep)
        if any(len(axis) == 0 for axis in axes):
            return
        evaluated: Dict[Tuple[int, ...], Optional[DesignPoint]] = {}

        def probe(index: Tuple[int, ...]) -> None:
            """Evaluate one grid index at most once."""
            if index not in evaluated:
                evaluated[index] = evaluate(network, device, _entry_at(axes, index))

        for index in itertools.product(
            *(_coarse_indexes(len(axis), self.coarse) for axis in axes)
        ):
            probe(index)

        for _ in range(self.max_rounds):
            front_points = pareto_front(
                [point for point in evaluated.values() if point is not None], objectives
            )
            front_ids = {id(point) for point in front_points}
            fresh: List[Tuple[int, ...]] = []
            for index, point in evaluated.items():
                if point is None or id(point) not in front_ids:
                    continue
                for neighbor in itertools.product(
                    *(
                        range(max(0, i - self.neighborhood), min(len(axis), i + self.neighborhood + 1))
                        for axis, i in zip(axes, index)
                    )
                ):
                    if neighbor not in evaluated:
                        fresh.append(neighbor)
            if not fresh:
                break
            for index in sorted(set(fresh)):
                probe(index)

        for index in sorted(evaluated):
            point = evaluated[index]
            if point is not None:
                yield point


# --------------------------------------------------------------------- #
# Strategy registry — specs resolve strategies declaratively by name.
# --------------------------------------------------------------------- #
StrategyFactory = Callable[..., SearchStrategy]

#: Known strategy factories, keyed by canonical name.
STRATEGIES: Dict[str, StrategyFactory] = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "pareto-refine": ParetoRefineStrategy,
}


def register_strategy(name: str, factory: StrategyFactory, overwrite: bool = False) -> None:
    """Register a strategy factory under ``name`` (collision raises).

    ``factory`` is called with the spec's strategy params as keyword
    arguments and must return an object implementing :class:`SearchStrategy`.
    """
    if not isinstance(name, str) or not name:
        raise TypeError("name must be a non-empty string")
    if not callable(factory):
        raise TypeError("factory must be callable")
    if not overwrite and name in STRATEGIES:
        raise ValueError(
            f"strategy {name!r} is already registered; pass overwrite=True to replace it"
        )
    STRATEGIES[name] = factory


def known_strategies() -> List[str]:
    """Sorted strategy names the registry can build."""
    return sorted(STRATEGIES)


def get_strategy(name: str, **params: Any) -> SearchStrategy:
    """Build a strategy by registry name with keyword parameters."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown strategy {name!r}; known strategies: {known_strategies()}"
        ) from None
    try:
        strategy = factory(**params)
    except TypeError as error:
        raise ValueError(f"invalid parameters for strategy {name!r}: {error}") from None
    return strategy


def resolve_strategy(strategy: "Union[SearchStrategy, StrategySpec, str]") -> SearchStrategy:
    """Pass through a strategy object, or build one from a spec/name."""
    from .spec import StrategySpec

    if isinstance(strategy, str):
        return get_strategy(strategy)
    if isinstance(strategy, StrategySpec):
        return get_strategy(strategy.name, **strategy.params)
    if isinstance(strategy, SearchStrategy):
        return strategy
    raise TypeError(
        f"expected a strategy, StrategySpec or name, got {type(strategy).__name__}"
    )

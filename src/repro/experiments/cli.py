"""``python -m repro`` — run declarative experiments from the command line.

Subcommands
-----------
``run SPEC.json``
    Execute an experiment spec file end-to-end (resolve networks/devices,
    run its search strategy, print the campaign report) and optionally
    persist the evaluated result (``-o``) and/or a CSV of every point
    (``--csv``).
``report RESULT.json``
    Reload a previously saved result and re-print its summary, comparison
    and best-by-metric views — no re-evaluation.
``list networks|devices|strategies``
    Show what the registries can resolve, one name per line.
``serve``
    Start the :mod:`repro.service` HTTP server: a persistent
    :class:`~repro.service.ResultStore`, micro-batched ``evaluate`` /
    ``query`` / ``pareto`` / ``best`` endpoints and the sharded async
    campaign-job scheduler (``/v1/jobs``, ``--workers N``).
``worker``
    Attach a pull-based fleet worker (:mod:`repro.worker`) to a running
    server: it leases pending campaign-job shards over ``/v1/leases``,
    executes them and pushes the results back, exiting gracefully on
    ``SIGTERM`` after finishing its in-flight shards.
``migrate``
    Rewrite a result store's segments into another on-disk format
    (``--format columnar`` by default, ``--format jsonl`` to go back),
    compacting away dead records along the way.  Safe to run offline on
    a store a server later reopens.

The full flag reference lives in ``docs/cli.md`` (a test keeps it in sync
with the parsers' ``--help`` output).

Examples
--------
::

    python -m repro run examples/experiment_spec.json -o result.json
    python -m repro report result.json --metric power_efficiency
    python -m repro list strategies
    python -m repro serve --store .repro-store --port 8787
    python -m repro worker --server http://127.0.0.1:8787 --concurrency 2
    python -m repro migrate --store .repro-store --format columnar
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..dse.campaign import CampaignResult, metric_direction
from ..dse.engine import ExecutorConfig
from ..hw.device import known_devices
from ..nn.registry import known_networks
from ..reporting import (
    campaign_comparison_table,
    campaign_summary_table,
    campaign_to_csv,
    format_table,
)
from .runner import run_experiment
from .spec import ExperimentSpec
from .strategies import known_strategies

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, report and inspect declarative design-space experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="execute an experiment spec file end-to-end"
    )
    run_parser.add_argument("spec", help="path to an ExperimentSpec JSON file")
    run_parser.add_argument(
        "-o", "--output", metavar="PATH", help="save the evaluated result as JSON"
    )
    run_parser.add_argument(
        "--csv", metavar="PATH", help="export every feasible point as CSV"
    )
    run_parser.add_argument(
        "--executor",
        choices=("serial", "auto", "vectorized", "process"),
        help="override the spec's executor mode",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="disable evaluation memoisation"
    )
    run_parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the report tables"
    )

    report_parser = commands.add_parser(
        "report", help="re-print the report of a saved result (no re-evaluation)"
    )
    report_parser.add_argument("result", help="path to a saved CampaignResult JSON file")
    report_parser.add_argument(
        "--metric",
        default=None,
        help="comparison metric (defaults to the spec's first metric)",
    )
    report_parser.add_argument(
        "--csv", metavar="PATH", help="export every feasible point as CSV"
    )

    list_parser = commands.add_parser("list", help="show registry contents")
    list_parser.add_argument("what", choices=("networks", "devices", "strategies"))

    serve_parser = commands.add_parser(
        "serve", help="start the result-store + design-query HTTP server"
    )
    serve_parser.add_argument(
        "--store",
        metavar="DIR",
        default=".repro-store",
        help="result-store directory (created if missing; default: .repro-store)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8787, help="bind port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch collection window for /v1/evaluate (default: 2.0)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="dispatch a batch immediately at this many pending requests",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "local campaign-job shard workers: 0 disables local execution "
            "(shards run only on the worker fleet), 1 runs shards on a single "
            "background thread, N >= 2 fans them out over a process pool "
            "(default: 1)"
        ),
    )
    serve_parser.add_argument(
        "--shard-entries",
        type=int,
        default=512,
        help=(
            "max grid entries per campaign-job shard before a (network, device) "
            "cell is split further (default: 512)"
        ),
    )
    serve_parser.add_argument(
        "--lease-ttl-s",
        type=float,
        default=60.0,
        help=(
            "seconds a fleet worker's shard lease survives without a heartbeat "
            "before the shard re-queues (default: 60)"
        ),
    )
    serve_parser.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable the metrics registry and the /metrics + /v1/stats endpoints",
    )
    serve_parser.add_argument(
        "--max-pending-evals",
        type=int,
        default=None,
        help=(
            "admission bound on queued + in-flight /v1/evaluate requests; "
            "beyond it the server answers 429 with Retry-After "
            "(default: unbounded)"
        ),
    )
    serve_parser.add_argument(
        "--max-pending-jobs",
        type=int,
        default=None,
        help=(
            "bound on active (non-terminal) campaign jobs; beyond it job "
            "submission answers 429 with Retry-After (default: unbounded)"
        ),
    )
    serve_parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the startup banner"
    )

    worker_parser = commands.add_parser(
        "worker", help="attach a pull-based fleet worker to a running server"
    )
    worker_parser.add_argument(
        "--server",
        default="http://127.0.0.1:8787",
        help="server URL to pull shard leases from (default: http://127.0.0.1:8787)",
    )
    worker_parser.add_argument(
        "--worker-id",
        default=None,
        help="worker identity reported to the server (default: hostname-pid)",
    )
    worker_parser.add_argument(
        "--concurrency",
        type=int,
        default=1,
        help="shards executed at once; also caps leases held (default: 1)",
    )
    worker_parser.add_argument(
        "--lease-ttl-s",
        type=float,
        default=None,
        help="lease TTL to request per acquire (default: the server's TTL)",
    )
    worker_parser.add_argument(
        "--heartbeat-s",
        type=float,
        default=None,
        help="seconds between lease heartbeats (default: a third of the lease TTL)",
    )
    worker_parser.add_argument(
        "--poll-s",
        type=float,
        default=0.5,
        help="idle poll interval when no shards are claimable (default: 0.5)",
    )
    worker_parser.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="exit after leasing this many shards (default: run until stopped)",
    )
    worker_parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress per-shard progress lines"
    )

    migrate_parser = commands.add_parser(
        "migrate", help="rewrite a result store's segments into another format"
    )
    migrate_parser.add_argument(
        "--store",
        default=".repro-store",
        help="result-store directory to migrate in place (default: .repro-store)",
    )
    migrate_parser.add_argument(
        "--format",
        choices=("columnar", "jsonl"),
        default="columnar",
        help="target segment format (default: columnar)",
    )
    migrate_parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the migration summary"
    )
    return parser


def _print_report(result: CampaignResult, metric: Optional[str] = None) -> None:
    spec = result.spec
    metrics: Sequence[str] = (metric,) if metric else (spec.metrics if spec else ("throughput_gops",))
    print(campaign_summary_table(result))
    for name in metrics[:1]:
        print()
        print(campaign_comparison_table(result, metric=name))
    if result.points:
        rows = []
        for name in metrics:
            best = result.best(name)
            rows.append(
                {
                    "metric": name,
                    "direction": "max" if metric_direction(name) else "min",
                    "best": float(getattr(best, name)),
                    "design": best.name,
                    "network": best.workload_name,
                    "device": best.device_name,
                }
            )
        print()
        print(format_table(rows, title="Best by metric", precision=3))


def _cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.load(args.spec)
    executor = ExecutorConfig(mode=args.executor) if args.executor else None
    result = run_experiment(
        spec,
        cache=False if args.no_cache else None,
        executor=executor,
    )
    if not args.quiet:
        print(
            f"experiment {spec.name!r}: strategy={spec.strategy.name} "
            f"evaluations={result.evaluations}/{spec.grid_size} "
            f"feasible={result.feasible} "
            f"elapsed={result.elapsed_seconds * 1e3:.1f} ms"
        )
        print()
        _print_report(result)
    if args.output:
        path = result.save(args.output)
        print(f"result saved to {path}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(campaign_to_csv(result))
        print(f"points exported to {args.csv}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    result = CampaignResult.load(args.result)
    _print_report(result, metric=args.metric)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(campaign_to_csv(result))
        print(f"points exported to {args.csv}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    names = {
        "networks": known_networks,
        "devices": known_devices,
        "strategies": known_strategies,
    }[args.what]()
    for name in names:
        print(name)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service.server import serve  # deferred: keep plain CLI imports light

    return serve(
        args.store,
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        workers=args.workers,
        shard_entries=args.shard_entries,
        lease_ttl_s=args.lease_ttl_s,
        quiet=args.quiet,
        metrics=not args.no_metrics,
        max_pending_evals=args.max_pending_evals,
        max_pending_jobs=args.max_pending_jobs,
    )


def _cmd_worker(args: argparse.Namespace) -> int:
    from ..worker.loop import run_worker  # deferred: keep plain CLI imports light

    return run_worker(
        args.server,
        worker_id=args.worker_id,
        concurrency=args.concurrency,
        ttl_s=args.lease_ttl_s,
        heartbeat_s=args.heartbeat_s,
        poll_s=args.poll_s,
        max_shards=args.max_shards,
        quiet=args.quiet,
    )


def _cmd_migrate(args: argparse.Namespace) -> int:
    from ..service.store import ResultStore  # deferred: keep plain CLI imports light

    store = ResultStore(args.store)
    stats = store.migrate(format=args.format)
    if not args.quiet:
        print(
            f"store {args.store!r} migrated to {stats['format']}: "
            f"kept {stats['kept']} result(s), dropped {stats['dropped']}"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "run": _cmd_run,
        "report": _cmd_report,
        "list": _cmd_list,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "migrate": _cmd_migrate,
    }[args.command]
    try:
        return handler(args)
    except FileNotFoundError as error:
        print(f"error: no such file: {error.filename or error}", file=sys.stderr)
    except (ValueError, KeyError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
    return 2

"""``python -m repro`` — run declarative experiments from the command line.

Subcommands
-----------
``run SPEC.json``
    Execute an experiment spec file end-to-end (resolve networks/devices,
    run its search strategy, print the campaign report) and optionally
    persist the evaluated result (``-o``) and/or a CSV of every point
    (``--csv``).
``report RESULT.json``
    Reload a previously saved result and re-print its summary, comparison
    and best-by-metric views — no re-evaluation.
``list networks|devices|strategies``
    Show what the registries can resolve, one name per line.
``serve``
    Start the :mod:`repro.service` HTTP server: a persistent
    :class:`~repro.service.ResultStore`, micro-batched ``evaluate`` /
    ``query`` / ``pareto`` / ``best`` endpoints and the sharded async
    campaign-job scheduler (``/v1/jobs``, ``--workers N``).

The full flag reference lives in ``docs/cli.md`` (a test keeps it in sync
with the parsers' ``--help`` output).

Examples
--------
::

    python -m repro run examples/experiment_spec.json -o result.json
    python -m repro report result.json --metric power_efficiency
    python -m repro list strategies
    python -m repro serve --store .repro-store --port 8787
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from ..dse.campaign import CampaignResult, metric_direction
from ..dse.engine import ExecutorConfig
from ..hw.device import known_devices
from ..nn.registry import known_networks
from ..reporting import (
    campaign_comparison_table,
    campaign_summary_table,
    campaign_to_csv,
    format_table,
)
from .runner import run_experiment
from .spec import ExperimentSpec
from .strategies import known_strategies

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, report and inspect declarative design-space experiments.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="execute an experiment spec file end-to-end"
    )
    run_parser.add_argument("spec", help="path to an ExperimentSpec JSON file")
    run_parser.add_argument(
        "-o", "--output", metavar="PATH", help="save the evaluated result as JSON"
    )
    run_parser.add_argument(
        "--csv", metavar="PATH", help="export every feasible point as CSV"
    )
    run_parser.add_argument(
        "--executor",
        choices=("serial", "auto", "vectorized", "process"),
        help="override the spec's executor mode",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true", help="disable evaluation memoisation"
    )
    run_parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the report tables"
    )

    report_parser = commands.add_parser(
        "report", help="re-print the report of a saved result (no re-evaluation)"
    )
    report_parser.add_argument("result", help="path to a saved CampaignResult JSON file")
    report_parser.add_argument(
        "--metric",
        default=None,
        help="comparison metric (defaults to the spec's first metric)",
    )
    report_parser.add_argument(
        "--csv", metavar="PATH", help="export every feasible point as CSV"
    )

    list_parser = commands.add_parser("list", help="show registry contents")
    list_parser.add_argument("what", choices=("networks", "devices", "strategies"))

    serve_parser = commands.add_parser(
        "serve", help="start the result-store + design-query HTTP server"
    )
    serve_parser.add_argument(
        "--store",
        metavar="DIR",
        default=".repro-store",
        help="result-store directory (created if missing; default: .repro-store)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8787, help="bind port (0 picks a free one)"
    )
    serve_parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="micro-batch collection window for /v1/evaluate (default: 2.0)",
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="dispatch a batch immediately at this many pending requests",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "campaign-job shard workers: 1 runs shards on a single background "
            "thread, N >= 2 fans them out over a process pool (default: 1)"
        ),
    )
    serve_parser.add_argument(
        "--shard-entries",
        type=int,
        default=512,
        help=(
            "max grid entries per campaign-job shard before a (network, device) "
            "cell is split further (default: 512)"
        ),
    )
    serve_parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the startup banner"
    )
    return parser


def _print_report(result: CampaignResult, metric: Optional[str] = None) -> None:
    spec = result.spec
    metrics: Sequence[str] = (metric,) if metric else (spec.metrics if spec else ("throughput_gops",))
    print(campaign_summary_table(result))
    for name in metrics[:1]:
        print()
        print(campaign_comparison_table(result, metric=name))
    if result.points:
        rows = []
        for name in metrics:
            best = result.best(name)
            rows.append(
                {
                    "metric": name,
                    "direction": "max" if metric_direction(name) else "min",
                    "best": float(getattr(best, name)),
                    "design": best.name,
                    "network": best.workload_name,
                    "device": best.device_name,
                }
            )
        print()
        print(format_table(rows, title="Best by metric", precision=3))


def _cmd_run(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.load(args.spec)
    executor = ExecutorConfig(mode=args.executor) if args.executor else None
    result = run_experiment(
        spec,
        cache=False if args.no_cache else None,
        executor=executor,
    )
    if not args.quiet:
        print(
            f"experiment {spec.name!r}: strategy={spec.strategy.name} "
            f"evaluations={result.evaluations}/{spec.grid_size} "
            f"feasible={result.feasible} "
            f"elapsed={result.elapsed_seconds * 1e3:.1f} ms"
        )
        print()
        _print_report(result)
    if args.output:
        path = result.save(args.output)
        print(f"result saved to {path}")
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(campaign_to_csv(result))
        print(f"points exported to {args.csv}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    result = CampaignResult.load(args.result)
    _print_report(result, metric=args.metric)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(campaign_to_csv(result))
        print(f"points exported to {args.csv}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    names = {
        "networks": known_networks,
        "devices": known_devices,
        "strategies": known_strategies,
    }[args.what]()
    for name in names:
        print(name)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service.server import serve  # deferred: keep plain CLI imports light

    return serve(
        args.store,
        host=args.host,
        port=args.port,
        batch_window_ms=args.batch_window_ms,
        max_batch=args.max_batch,
        workers=args.workers,
        shard_entries=args.shard_entries,
        quiet=args.quiet,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = {
        "run": _cmd_run,
        "report": _cmd_report,
        "list": _cmd_list,
        "serve": _cmd_serve,
    }[args.command]
    try:
        return handler(args)
    except FileNotFoundError as error:
        print(f"error: no such file: {error.filename or error}", file=sys.stderr)
    except (ValueError, KeyError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
    return 2

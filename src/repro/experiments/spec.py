"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the fully declarative, validated description of
one exploration experiment: which networks and devices (by registry name),
which sweep grids, which search strategy walks them, which objectives and
metrics the report cares about, and how evaluation executes (cache /
executor).  Specs are frozen, picklable, diffable artifacts with a lossless
``to_dict``/``from_dict`` JSON round-trip, so an experiment can be saved to a
file, reviewed, versioned, resumed and re-run bit-identically — the search
*specification* is first-class data, separate from the solver that executes
it (see :mod:`repro.experiments.strategies`).

>>> from repro.experiments import ExperimentSpec
>>> spec = ExperimentSpec(networks=("vgg16-d", "alexnet"), strategy="grid")
>>> ExperimentSpec.from_dict(spec.to_dict()) == spec
True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..core.design_space import SweepSpec
from ..core.pareto import Objective, ObjectiveLike
from ..dse.campaign import Campaign, DEFAULT_OBJECTIVES
from ..dse.engine import ExecutorConfig
from ..hw.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    PowerCalibration,
    ResourceCalibration,
)
from ..hw.device import FpgaDevice
from ..nn.model import Network

__all__ = [
    "EXPERIMENT_SCHEMA",
    "canonical_json_hash",
    "StrategySpec",
    "ExperimentSpec",
    "calibration_to_dict",
    "calibration_from_dict",
    "executor_to_dict",
    "executor_from_dict",
]

#: Versioned schema tag embedded in every serialized spec.
EXPERIMENT_SCHEMA = "repro.experiment/1"


def canonical_json_hash(data: dict) -> str:
    """sha256 over the canonical (sorted-key, whitespace-free) JSON form.

    The one canonicalization policy shared by spec fingerprints and the
    :mod:`repro.service` store's content keys — a single definition so the
    two can never drift apart.
    """
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()

_JSON_SCALARS = (str, int, float, bool, type(None))


def _freeze_param(value: Any) -> Any:
    """Normalize a strategy parameter to an immutable, JSON-safe value.

    Sequences become tuples (so a spec read back from JSON — where tuples
    decode as lists — compares equal to the original), scalars pass through,
    anything else is rejected.
    """
    if isinstance(value, bool) or isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_param(item) for item in value)
    raise ValueError(
        f"strategy parameters must be JSON-serializable scalars or sequences, got {value!r}"
    )


def _thaw_param(value: Any) -> Any:
    """Inverse of :func:`_freeze_param` for JSON emission (tuples -> lists)."""
    if isinstance(value, tuple):
        return [_thaw_param(item) for item in value]
    return value


@dataclass(frozen=True)
class StrategySpec:
    """A search strategy referenced by registry name plus its parameters.

    ``params`` are keyword arguments for the strategy's constructor (see
    :func:`repro.experiments.get_strategy`); they are normalized to
    immutable JSON-safe values at construction so two specs describing the
    same strategy always compare equal.
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("strategy name must be a non-empty string")
        if not isinstance(self.params, dict):
            raise ValueError(
                f"strategy params must be a mapping, got {type(self.params).__name__}"
            )
        frozen = {}
        for key, value in self.params.items():
            if not isinstance(key, str):
                raise ValueError(f"strategy parameter names must be strings, got {key!r}")
            frozen[key] = _freeze_param(value)
        object.__setattr__(self, "params", frozen)

    def to_dict(self) -> dict:
        """JSON-ready form (tuples thawed back to lists)."""
        return {
            "name": self.name,
            "params": {key: _thaw_param(value) for key, value in self.params.items()},
        }

    @classmethod
    def from_dict(cls, data: Union[str, dict]) -> "StrategySpec":
        """Rebuild from :meth:`to_dict` output or a bare strategy name."""
        if isinstance(data, str):
            return cls(data)
        if not isinstance(data, dict):
            raise ValueError(f"strategy must be a name or mapping, got {type(data).__name__}")
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ValueError(f"unknown strategy fields {sorted(unknown)}")
        if "name" not in data:
            raise ValueError("strategy mapping requires a 'name'")
        return cls(data["name"], dict(data.get("params") or {}))


# --------------------------------------------------------------------- #
# Calibration / executor serialization helpers
# --------------------------------------------------------------------- #
def calibration_to_dict(calibration: Calibration) -> dict:
    """Flatten a :class:`Calibration` bundle into plain JSON-ready dicts."""
    return {
        "resources": dict(vars(calibration.resources)),
        "power": dict(vars(calibration.power)),
    }


def calibration_from_dict(data: Optional[dict]) -> Calibration:
    """Rebuild a :class:`Calibration`; ``None`` means the library default."""
    if data is None:
        return DEFAULT_CALIBRATION
    if not isinstance(data, dict):
        raise ValueError(f"calibration must be a mapping, got {type(data).__name__}")
    unknown = set(data) - {"resources", "power"}
    if unknown:
        raise ValueError(f"unknown calibration fields {sorted(unknown)}")
    try:
        return Calibration(
            resources=ResourceCalibration(**data.get("resources", {})),
            power=PowerCalibration(**data.get("power", {})),
        )
    except TypeError as error:
        raise ValueError(f"invalid calibration: {error}") from None


def executor_to_dict(executor: Optional[ExecutorConfig]) -> Optional[dict]:
    """Flatten an :class:`ExecutorConfig` to JSON (``None`` passes through)."""
    if executor is None:
        return None
    return {
        "mode": executor.mode,
        "max_workers": executor.max_workers,
        "chunk_size": executor.chunk_size,
        "min_grid_for_processes": executor.min_grid_for_processes,
        "min_grid_for_vectorized": executor.min_grid_for_vectorized,
    }


def executor_from_dict(data: Optional[dict]) -> Optional[ExecutorConfig]:
    """Inverse of :func:`executor_to_dict` (invalid mappings raise)."""
    if data is None:
        return None
    if not isinstance(data, dict):
        raise ValueError(f"executor must be a mapping, got {type(data).__name__}")
    try:
        return ExecutorConfig(**data)
    except TypeError as error:
        raise ValueError(f"invalid executor config: {error}") from None


def _normalize_objectives(
    objectives: Sequence[ObjectiveLike],
) -> Tuple[Tuple[str, bool], ...]:
    """Canonicalize objectives to ``(metric, maximize)`` pairs."""
    if isinstance(objectives, (str, Objective)):
        objectives = (objectives,)
    objectives = tuple(objectives)
    if (
        len(objectives) == 2
        and isinstance(objectives[0], str)
        and isinstance(objectives[1], bool)
    ):
        # A single bare ("metric", maximize) pair, matching Campaign's rule.
        objectives = (tuple(objectives),)
    normalized = []
    for objective in objectives:
        if isinstance(objective, Objective):
            normalized.append((objective.metric, objective.maximize))
        elif isinstance(objective, str):
            normalized.append((objective, True))
        else:
            metric, maximize = objective
            if not isinstance(metric, str) or not isinstance(maximize, bool):
                raise ValueError(
                    f"objectives must be (metric, maximize) pairs, got {objective!r}"
                )
            normalized.append((metric, maximize))
    if not normalized:
        raise ValueError("at least one objective is required")
    return tuple(normalized)


def _name_tuple(values: Any, what: str) -> Tuple[str, ...]:
    if isinstance(values, (str, Network, FpgaDevice)):
        values = (values,)
    values = tuple(values)
    if not values:
        raise ValueError(f"at least one {what} is required")
    names = []
    for value in values:
        if isinstance(value, (Network, FpgaDevice)):
            value = value.name
        if not isinstance(value, str) or not value:
            raise ValueError(
                f"{what} entries must be registry names (non-empty strings), got {value!r}"
            )
        names.append(value)
    return tuple(names)


@dataclass(frozen=True)
class ExperimentSpec:
    """Frozen, validated, fully declarative description of an experiment.

    Everything is referenced by value or by registry name — never by live
    object — so a spec can be serialized losslessly, diffed, pickled and
    executed later (or elsewhere) with identical results.

    Attributes
    ----------
    networks / devices:
        Registry names (see :func:`repro.nn.register_network` and
        :func:`repro.hw.register_device`).  Passing a concrete ``Network``
        or ``FpgaDevice`` records its ``name``.
    sweeps:
        One or more :class:`SweepSpec` grids, concatenated per cell.
    strategy:
        The :class:`StrategySpec` (or bare name) of the search strategy that
        walks the grid — ``"grid"``, ``"random"``, ``"pareto-refine"`` or
        any registered custom strategy.
    objectives:
        ``(metric, maximize)`` pairs used for Pareto analysis (and by
        front-guided strategies).
    metrics:
        Metric names the report/CLI highlights.
    calibration:
        Model calibration constants, embedded by value.
    executor:
        Optional :class:`ExecutorConfig`; ``None`` evaluates serially.
    cache:
        Whether evaluation may memoise through the process-wide cache.
    """

    networks: Sequence[Union[str, Network]]
    devices: Sequence[Union[str, FpgaDevice]] = ("xc7vx485t",)
    sweeps: Sequence[SweepSpec] = (SweepSpec(),)
    strategy: Union[StrategySpec, str] = StrategySpec("grid")
    objectives: Sequence[ObjectiveLike] = DEFAULT_OBJECTIVES
    metrics: Sequence[str] = ("throughput_gops", "power_efficiency", "total_latency_ms")
    skip_infeasible: bool = True
    calibration: Calibration = DEFAULT_CALIBRATION
    executor: Optional[ExecutorConfig] = None
    cache: bool = True
    name: str = "experiment"

    def __post_init__(self) -> None:
        object.__setattr__(self, "networks", _name_tuple(self.networks, "network"))
        object.__setattr__(self, "devices", _name_tuple(self.devices, "device"))
        sweeps = (self.sweeps,) if isinstance(self.sweeps, SweepSpec) else tuple(self.sweeps)
        if not sweeps or not all(isinstance(sweep, SweepSpec) for sweep in sweeps):
            raise ValueError("sweeps must be a SweepSpec or a non-empty sequence of SweepSpecs")
        object.__setattr__(self, "sweeps", sweeps)
        strategy = self.strategy
        if isinstance(strategy, str):
            strategy = StrategySpec(strategy)
        if not isinstance(strategy, StrategySpec):
            raise ValueError(
                f"strategy must be a StrategySpec or name, got {type(strategy).__name__}"
            )
        object.__setattr__(self, "strategy", strategy)
        object.__setattr__(self, "objectives", _normalize_objectives(self.objectives))
        metrics = (self.metrics,) if isinstance(self.metrics, str) else tuple(self.metrics)
        if not metrics or not all(isinstance(metric, str) and metric for metric in metrics):
            raise ValueError("metrics must be a non-empty sequence of metric names")
        object.__setattr__(self, "metrics", metrics)
        if not isinstance(self.calibration, Calibration):
            raise ValueError(
                f"calibration must be a Calibration, got {type(self.calibration).__name__}"
            )
        if self.executor is not None and not isinstance(self.executor, ExecutorConfig):
            raise ValueError(
                f"executor must be an ExecutorConfig or None, got {type(self.executor).__name__}"
            )
        if not isinstance(self.skip_infeasible, bool) or not isinstance(self.cache, bool):
            raise ValueError("skip_infeasible and cache must be booleans")
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("experiment name must be a non-empty string")

    # ------------------------------------------------------------------ #
    @property
    def grid_size(self) -> int:
        """Total configurations in the full grid (strategies may probe fewer)."""
        per_cell = sum(sweep.size for sweep in self.sweeps)
        return len(self.networks) * len(self.devices) * per_cell

    def with_strategy(self, strategy: Union[StrategySpec, str], **params: Any) -> "ExperimentSpec":
        """Copy of the spec with a different search strategy."""
        if isinstance(strategy, str):
            strategy = StrategySpec(strategy, params)
        elif params:
            raise ValueError("pass params either in the StrategySpec or as kwargs, not both")
        return replace(self, strategy=strategy)

    #: ``to_dict`` keys that tune *how* evaluation executes without
    #: affecting *what* it computes (every executor mode is bit-identical
    #: and the cache only memoises): excluded from the fingerprint so
    #: results computed under any execution settings are interchangeable.
    EXECUTION_ONLY_FIELDS = ("executor", "cache")

    def fingerprint(self) -> str:
        """Stable content hash identifying this spec's search semantics.

        Computed over the canonical (sorted-key, whitespace-free) JSON
        form of :meth:`to_dict` minus the execution-tuning fields
        (:attr:`EXECUTION_ONLY_FIELDS`) — two specs that describe the same
        search share a fingerprint however they were constructed and
        however their evaluation is executed, while any semantic change
        (a sweep value, an objective, a network) produces a fresh one.
        This is the primary key the :class:`repro.service.ResultStore`
        indexes campaign results under.
        """
        data = {
            key: value
            for key, value in self.to_dict().items()
            if key not in self.EXECUTION_ONLY_FIELDS
        }
        return canonical_json_hash(data)

    # ------------------------------------------------------------------ #
    def to_campaign(self) -> Campaign:
        """Equivalent legacy :class:`Campaign` (grid semantics) for reporting."""
        return Campaign(
            networks=self.networks,
            devices=self.devices,
            sweeps=self.sweeps,
            calibration=self.calibration,
            skip_infeasible=self.skip_infeasible,
            objectives=self.objectives,
            name=self.name,
        )

    @classmethod
    def from_campaign(
        cls, campaign: Campaign, strategy: Union[StrategySpec, str] = "grid"
    ) -> "ExperimentSpec":
        """Declarative spec equivalent to a legacy :class:`Campaign`.

        Concrete ``Network``/``FpgaDevice`` objects are recorded by name;
        re-running the spec resolves those names through the registries, so
        unregistered ad-hoc objects must be registered first.
        """
        return cls(
            networks=campaign.networks,
            devices=campaign.devices,
            sweeps=campaign.resolved_sweeps(),
            strategy=strategy,
            objectives=campaign.objectives,
            skip_infeasible=campaign.skip_infeasible,
            calibration=campaign.calibration,
            name=campaign.name,
        )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Lossless JSON-ready representation; inverse of :meth:`from_dict`."""
        return {
            "schema": EXPERIMENT_SCHEMA,
            "name": self.name,
            "networks": list(self.networks),
            "devices": list(self.devices),
            "sweeps": [sweep.to_dict() for sweep in self.sweeps],
            "strategy": self.strategy.to_dict(),
            "objectives": [[metric, maximize] for metric, maximize in self.objectives],
            "metrics": list(self.metrics),
            "skip_infeasible": self.skip_infeasible,
            "calibration": calibration_to_dict(self.calibration),
            "executor": executor_to_dict(self.executor),
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Unknown keys and schema mismatches raise ``ValueError`` so a typo in
        a hand-written spec file fails loudly instead of being ignored.
        """
        if not isinstance(data, dict):
            raise ValueError(f"experiment spec must be a mapping, got {type(data).__name__}")
        schema = data.get("schema", EXPERIMENT_SCHEMA)
        if schema != EXPERIMENT_SCHEMA:
            raise ValueError(
                f"unsupported experiment schema {schema!r}; expected {EXPERIMENT_SCHEMA!r}"
            )
        known = {
            "schema", "name", "networks", "devices", "sweeps", "strategy",
            "objectives", "metrics", "skip_infeasible", "calibration",
            "executor", "cache",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown experiment fields {sorted(unknown)}; known fields: {sorted(known)}"
            )
        if "networks" not in data:
            raise ValueError("experiment spec requires 'networks'")
        kwargs: Dict[str, Any] = {"networks": data["networks"]}
        if "devices" in data:
            kwargs["devices"] = data["devices"]
        if "sweeps" in data:
            sweeps = data["sweeps"]
            if not isinstance(sweeps, (list, tuple)):
                raise ValueError("sweeps must be a list of sweep mappings")
            kwargs["sweeps"] = tuple(SweepSpec.from_dict(sweep) for sweep in sweeps)
        if "strategy" in data:
            kwargs["strategy"] = StrategySpec.from_dict(data["strategy"])
        if "objectives" in data:
            if not isinstance(data["objectives"], (list, tuple)):
                raise ValueError("objectives must be a list")
            # Keep scalar entries (bare metric names, the single-pair
            # shorthand) intact for the constructor's normalization; only
            # JSON lists become tuples.
            kwargs["objectives"] = tuple(
                tuple(pair) if isinstance(pair, (list, tuple)) else pair
                for pair in data["objectives"]
            )
        if "metrics" in data:
            kwargs["metrics"] = tuple(data["metrics"])
        if "skip_infeasible" in data:
            kwargs["skip_infeasible"] = data["skip_infeasible"]
        if "calibration" in data:
            kwargs["calibration"] = calibration_from_dict(data["calibration"])
        if "executor" in data:
            kwargs["executor"] = executor_from_dict(data["executor"])
        if "cache" in data:
            kwargs["cache"] = data["cache"]
        if "name" in data:
            kwargs["name"] = data["name"]
        return cls(**kwargs)

    # ------------------------------------------------------------------ #
    def to_json(self, indent: int = 2) -> str:
        """The spec as pretty-printed JSON text."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec to a JSON file; returns the path written."""
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Read a spec from a JSON file."""
        return cls.from_json(Path(path).read_text())

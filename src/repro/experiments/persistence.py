"""Versioned JSON persistence for evaluated campaign results.

A saved result embeds the declarative :class:`ExperimentSpec` it came from
(derived from the legacy ``Campaign`` when the run predates the spec API),
every feasible :class:`DesignPoint` and the run bookkeeping — enough to
reload, re-analyse and re-report without re-evaluating anything, or to diff
two runs of the same spec.

Round-trip fidelity: JSON serializes Python floats via their shortest
``repr``, which parses back to the exact same double, so a loaded result's
points compare equal to the in-memory originals (the provenance-only
``engine`` model is not persisted; it is excluded from equality).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..core.design_point import DesignPoint
from ..core.throughput import LatencyReport
from ..dse.cache import CacheStats
from ..dse.campaign import CampaignResult
from ..hw.resources import ResourceEstimate
from .spec import ExperimentSpec

__all__ = [
    "RESULT_SCHEMA",
    "point_to_dict",
    "point_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
]

#: Versioned schema tag embedded in every serialized result.
RESULT_SCHEMA = "repro.campaign-result/1"


def point_to_dict(point: DesignPoint) -> dict:
    """JSON-ready representation of one design point (engine omitted)."""
    return {
        "name": point.name,
        "m": point.m,
        "r": point.r,
        "parallel_pes": point.parallel_pes,
        "multipliers": point.multipliers,
        "frequency_mhz": point.frequency_mhz,
        "shared_data_transform": point.shared_data_transform,
        "device_name": point.device_name,
        "precision": point.precision,
        "latency": {
            "m": point.latency.m,
            "r": point.latency.r,
            "parallel_pes": point.latency.parallel_pes,
            "frequency_mhz": point.latency.frequency_mhz,
            "pipeline_depth": point.latency.pipeline_depth,
            "group_latency_ms": dict(point.latency.group_latency_ms),
            "total_latency_ms": point.latency.total_latency_ms,
            "spatial_ops": point.latency.spatial_ops,
        },
        "throughput_gops": point.throughput_gops,
        "multiplier_efficiency": point.multiplier_efficiency,
        "resources": {
            "luts": point.resources.luts,
            "registers": point.resources.registers,
            "dsp_slices": point.resources.dsp_slices,
            "bram_kbits": point.resources.bram_kbits,
            "multipliers": point.resources.multipliers,
        },
        "power_watts": point.power_watts,
        "power_efficiency": point.power_efficiency,
        "spatial_multiplications": point.spatial_multiplications,
        "winograd_multiplications": point.winograd_multiplications,
        "implementation_transform_ops": point.implementation_transform_ops,
        "workload_name": point.workload_name,
        "bit_width": point.bit_width,
        "max_rel_error": point.max_rel_error,
        "mean_rel_error": point.mean_rel_error,
    }


def point_from_dict(data: dict) -> DesignPoint:
    """Rebuild a :class:`DesignPoint` from :func:`point_to_dict` output.

    The ``engine`` provenance model is not persisted and comes back as
    ``None``; it is excluded from design-point equality, so loaded points
    compare equal to their in-memory originals.
    """
    if not isinstance(data, dict):
        raise ValueError(f"design point must be a mapping, got {type(data).__name__}")
    try:
        latency = LatencyReport(
            m=data["latency"]["m"],
            r=data["latency"]["r"],
            parallel_pes=data["latency"]["parallel_pes"],
            frequency_mhz=data["latency"]["frequency_mhz"],
            pipeline_depth=data["latency"]["pipeline_depth"],
            group_latency_ms=dict(data["latency"]["group_latency_ms"]),
            total_latency_ms=data["latency"]["total_latency_ms"],
            spatial_ops=data["latency"]["spatial_ops"],
        )
        resources = ResourceEstimate(**data["resources"])
        return DesignPoint(
            name=data["name"],
            m=data["m"],
            r=data["r"],
            parallel_pes=data["parallel_pes"],
            multipliers=data["multipliers"],
            frequency_mhz=data["frequency_mhz"],
            shared_data_transform=data["shared_data_transform"],
            device_name=data["device_name"],
            precision=data["precision"],
            latency=latency,
            throughput_gops=data["throughput_gops"],
            multiplier_efficiency=data["multiplier_efficiency"],
            resources=resources,
            power_watts=data["power_watts"],
            power_efficiency=data["power_efficiency"],
            spatial_multiplications=data["spatial_multiplications"],
            winograd_multiplications=data["winograd_multiplications"],
            implementation_transform_ops=data["implementation_transform_ops"],
            engine=None,
            workload_name=data["workload_name"],
            # Accuracy fields postdate the schema; absent in old payloads.
            bit_width=data.get("bit_width"),
            max_rel_error=data.get("max_rel_error", 0.0),
            mean_rel_error=data.get("mean_rel_error", 0.0),
        )
    except KeyError as error:
        raise ValueError(f"design point is missing field {error.args[0]!r}") from None
    except TypeError as error:
        raise ValueError(f"invalid design point: {error}") from None


def result_to_dict(result: CampaignResult) -> dict:
    """JSON-ready representation of a whole evaluated campaign."""
    spec = result.spec or ExperimentSpec.from_campaign(result.campaign)
    return {
        "schema": RESULT_SCHEMA,
        "spec": spec.to_dict(),
        "evaluations": result.evaluations,
        "elapsed_seconds": result.elapsed_seconds,
        "cache_stats": {
            "hits": result.cache_stats.hits,
            "misses": result.cache_stats.misses,
        },
        "points": [point_to_dict(point) for point in result.points],
    }


def result_from_dict(data: dict) -> CampaignResult:
    """Rebuild a :class:`CampaignResult` from :func:`result_to_dict` output."""
    if not isinstance(data, dict):
        raise ValueError(f"campaign result must be a mapping, got {type(data).__name__}")
    if "schema" not in data:
        raise ValueError(
            f"campaign result has no 'schema' field (not a repro campaign-result "
            f"file, or written by a pre-versioning tool); this reader supports "
            f"schema {RESULT_SCHEMA!r}"
        )
    schema = data["schema"]
    if schema != RESULT_SCHEMA:
        raise ValueError(
            f"unsupported campaign-result schema: found {schema!r}, supported "
            f"{RESULT_SCHEMA!r} (the file was written by a newer or incompatible "
            f"version of repro)"
        )
    unknown = set(data) - {
        "schema", "spec", "evaluations", "elapsed_seconds", "cache_stats", "points",
    }
    if unknown:
        raise ValueError(f"unknown campaign-result fields {sorted(unknown)}")
    spec = ExperimentSpec.from_dict(data["spec"])
    stats = data.get("cache_stats") or {}
    return CampaignResult(
        campaign=spec.to_campaign(),
        points=[point_from_dict(point) for point in data.get("points", [])],
        evaluations=data.get("evaluations", 0),
        elapsed_seconds=data.get("elapsed_seconds", 0.0),
        cache_stats=CacheStats(
            hits=stats.get("hits", 0), misses=stats.get("misses", 0)
        ),
        spec=spec,
    )


def save_result(result: CampaignResult, path: Union[str, Path]) -> Path:
    """Write a result to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(result), indent=2) + "\n")
    return path


def load_result(path: Union[str, Path]) -> CampaignResult:
    """Read a previously saved result back from a JSON file."""
    return result_from_dict(json.loads(Path(path).read_text()))

"""Arithmetic-complexity models of Section III (Eqs. 4-7).

These are the analytical expressions behind Figs. 1-3 of the paper:

* :func:`multiplication_complexity` — Eq. (4), the element-wise-stage
  multiplication count ``Om = NHWCK (m + r - 1)^2 / m^2`` (with ``m = 1``
  recovering spatial convolution's ``NHWCK r^2``);
* :func:`transform_complexity` — Eq. (5)/(6), the data/filter/inverse
  transform FLOPs ``Ot = T(D) + T(F) + T(I)``;
* :func:`implementation_transform_complexity` — Eq. (7), the transform
  complexity actually incurred by the proposed implementation, where filter
  transforms are pre-computed offline and the data transform is amortised
  over ``P`` parallel PEs.

All functions accept either a single :class:`~repro.nn.layers.ConvLayer` or a
whole :class:`~repro.nn.model.Network` (in which case layers are summed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..nn.layers import ConvLayer
from ..nn.model import Network
from ..winograd.op_count import TransformOpCounts, count_transform_ops

LayerOrNetwork = Union[ConvLayer, Network, Sequence[ConvLayer]]

__all__ = [
    "ComplexityBreakdown",
    "conv_layers_of",
    "spatial_multiplications",
    "multiplication_complexity",
    "transform_complexity",
    "implementation_transform_complexity",
    "batch_implementation_transform_complexity",
    "complexity_breakdown",
    "multiplication_reduction",
]


def conv_layers_of(workload: LayerOrNetwork) -> List[ConvLayer]:
    """Normalise a layer / list of layers / network into a list of conv layers."""
    if isinstance(workload, ConvLayer):
        return [workload]
    if isinstance(workload, Network):
        return workload.conv_layers
    layers = list(workload)
    if not all(isinstance(layer, ConvLayer) for layer in layers):
        raise TypeError("workload must be ConvLayer(s) or a Network")
    return layers


def spatial_multiplications(workload: LayerOrNetwork) -> int:
    """Multiplications of direct spatial convolution: ``NHWCK * r^2``."""
    return sum(layer.nhwck * layer.kernel_size ** 2 for layer in conv_layers_of(workload))


def multiplication_complexity(workload: LayerOrNetwork, m: int) -> float:
    """Eq. (4): element-wise-stage multiplications of ``F(m x m, r x r)``.

    ``m = 1`` degenerates to spatial convolution (``(1 + r - 1)^2 / 1 = r^2``).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    total = 0.0
    for layer in conv_layers_of(workload):
        r = layer.kernel_size
        total += layer.nhwck * (m + r - 1) ** 2 / (m * m)
    return total


def transform_complexity(
    workload: LayerOrNetwork,
    m: int,
    op_counts: Optional[TransformOpCounts] = None,
    include_filter: bool = True,
    prefer_canonical: bool = True,
) -> float:
    """Eqs. (5)-(6): net transform FLOPs ``Ot = T(D) + T(F) + T(I)``.

    Parameters
    ----------
    workload:
        Layer(s) or network.
    m:
        Output tile size.
    op_counts:
        Pre-computed per-tile ``beta``/``gamma``/``delta``; derived from the
        registered ``F(m, r)`` transform per kernel size otherwise.
    include_filter:
        Include ``T(F) = gamma * C * K``.  The paper includes it in the
        Section III analysis (Fig. 2) but excludes it from the implementation
        complexity (Eq. (7)) because filter transforms are pre-computed.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    total = 0.0
    cache: Dict[int, TransformOpCounts] = {}
    for layer in conv_layers_of(workload):
        r = layer.kernel_size
        counts = op_counts
        if counts is None:
            if r not in cache:
                cache[r] = count_transform_ops(m, r, prefer_canonical)
            counts = cache[r]
        pixels = layer.output_pixels  # N * H * W
        data = counts.beta / (m * m) * pixels * layer.in_channels
        inverse = counts.delta / (m * m) * pixels * layer.out_channels
        filter_ops = counts.gamma * layer.in_channels * layer.out_channels if include_filter else 0.0
        total += data + inverse + filter_ops
    return total


def implementation_transform_complexity(
    workload: LayerOrNetwork,
    m: int,
    parallel_pes: int,
    op_counts: Optional[TransformOpCounts] = None,
    prefer_canonical: bool = True,
) -> float:
    """Eq. (7): transform complexity of the proposed implementation.

    ``OT = NHWCK / m^2 * (beta / P + delta)`` — filter transforms are
    pre-computed, and the shared data transform's cost is amortised over the
    ``P`` PEs that consume its output.
    """
    if parallel_pes < 1:
        raise ValueError("parallel_pes must be >= 1")
    total = 0.0
    cache: Dict[int, TransformOpCounts] = {}
    for layer in conv_layers_of(workload):
        r = layer.kernel_size
        counts = op_counts
        if counts is None:
            if r not in cache:
                cache[r] = count_transform_ops(m, r, prefer_canonical)
            counts = cache[r]
        total += (
            layer.nhwck / (m * m) * (counts.beta / parallel_pes + counts.delta)
        )
    return total


def batch_implementation_transform_complexity(
    workload: LayerOrNetwork,
    m: int,
    parallel_pes,
    prefer_canonical: bool = True,
):
    """Vector twin of :func:`implementation_transform_complexity` over ``P``.

    ``parallel_pes`` is an integer array (one PE count per design of the
    grid group); the per-layer walk and accumulation order mirror the
    scalar path so every element is bit-identical to a scalar call with the
    same ``P``.
    """
    import numpy as np  # gated: only the vectorized DSE path needs numpy

    from ..winograd.op_count import cached_transform_ops

    parallel_pes = np.asarray(parallel_pes)
    if np.any(parallel_pes < 1):
        raise ValueError("parallel_pes must be >= 1")
    total = 0.0
    for layer in conv_layers_of(workload):
        counts = cached_transform_ops(m, layer.kernel_size, prefer_canonical)
        total = total + layer.nhwck / (m * m) * (counts.beta / parallel_pes + counts.delta)
    return total


@dataclass(frozen=True)
class ComplexityBreakdown:
    """All Section III quantities for one workload and output tile size."""

    m: int
    spatial_multiplications: float
    winograd_multiplications: float
    data_transform_ops: float
    filter_transform_ops: float
    inverse_transform_ops: float

    @property
    def transform_ops(self) -> float:
        """``Ot`` of Eq. (6)."""
        return self.data_transform_ops + self.filter_transform_ops + self.inverse_transform_ops

    @property
    def multiplication_reduction_pct(self) -> float:
        """Percentage decrease in multiplications relative to spatial conv."""
        return 100.0 * (1.0 - self.winograd_multiplications / self.spatial_multiplications)

    @property
    def multiplication_saving_factor(self) -> float:
        """Spatial-to-Winograd multiplication ratio (the 2.25x, 4x, ... factors)."""
        return self.spatial_multiplications / self.winograd_multiplications


def complexity_breakdown(
    workload: LayerOrNetwork,
    m: int,
    prefer_canonical: bool = True,
) -> ComplexityBreakdown:
    """Compute the full complexity breakdown used by Figs. 1-3."""
    layers = conv_layers_of(workload)
    cache: Dict[int, TransformOpCounts] = {}
    data_ops = 0.0
    filter_ops = 0.0
    inverse_ops = 0.0
    for layer in layers:
        r = layer.kernel_size
        if r not in cache:
            cache[r] = count_transform_ops(m, r, prefer_canonical)
        counts = cache[r]
        pixels = layer.output_pixels
        data_ops += counts.beta / (m * m) * pixels * layer.in_channels
        inverse_ops += counts.delta / (m * m) * pixels * layer.out_channels
        filter_ops += counts.gamma * layer.in_channels * layer.out_channels
    return ComplexityBreakdown(
        m=m,
        spatial_multiplications=float(spatial_multiplications(layers)),
        winograd_multiplications=multiplication_complexity(layers, m),
        data_transform_ops=data_ops,
        filter_transform_ops=filter_ops,
        inverse_transform_ops=inverse_ops,
    )


def multiplication_reduction(
    workload: LayerOrNetwork, m_from: int, m_to: int
) -> float:
    """Relative multiplication-complexity decrease going from ``m_from`` to ``m_to``.

    This is the quantity plotted in Fig. 3 (expressed there in percent against
    the next-smaller ``m``).
    """
    before = multiplication_complexity(workload, m_from)
    after = multiplication_complexity(workload, m_to)
    return (before - after) / before

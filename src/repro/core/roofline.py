"""Roofline analysis of Winograd convolution engines.

The paper's Table II assumes "enough memory bandwidth is available to refill
both buffers without having to wait for more input data" (Section V-B).  The
roofline model makes that assumption checkable: for each design point it
computes

* the compute roof — the engine's peak spatial-equivalent throughput
  (Eq. (10) with the pipeline-fill term dropped),
* the operational intensity of each layer — spatial-equivalent operations per
  byte moved from external memory (inputs read once, outputs written once,
  weights amortised), and
* the attainable throughput ``min(peak, bandwidth * intensity)``.

If the attainable throughput equals the compute roof for every VGG16-D layer
at the device's DRAM bandwidth, the paper's double-buffering assumption is
consistent; otherwise the model reports which layers are bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hw.device import FpgaDevice, virtex7_485t
from ..nn.layers import ConvLayer
from ..nn.model import Network

__all__ = ["LayerRoofline", "RooflineReport", "layer_operational_intensity", "roofline_report"]


def layer_operational_intensity(
    layer: ConvLayer,
    bytes_per_element: int = 4,
    include_weights: bool = True,
    tile_reuse: bool = True,
) -> float:
    """Spatial-equivalent operations per byte of external traffic for a layer.

    Traffic model: the input feature map is read once, the output feature map
    is written once, and the weights are read once per layer (their transforms
    are computed on the fly or stored at equal size).  ``tile_reuse=False``
    models a naive engine without a line buffer, where each input pixel is
    re-read for every overlapping tile row it participates in.
    """
    input_elems = layer.batch * layer.in_channels * layer.height * layer.width
    output_elems = layer.batch * layer.out_channels * layer.output_height * layer.output_width
    weight_elems = layer.weight_count if include_weights else 0
    if not tile_reuse:
        # Without a line buffer every r-row band is re-fetched ~r times.
        input_elems *= layer.kernel_size
    traffic_bytes = (input_elems + output_elems + weight_elems) * bytes_per_element
    return layer.flops / traffic_bytes


@dataclass(frozen=True)
class LayerRoofline:
    """Roofline evaluation of one layer on one engine configuration."""

    layer_name: str
    operational_intensity: float
    compute_roof_gops: float
    bandwidth_roof_gops: float

    @property
    def attainable_gops(self) -> float:
        """The binding roof: min of the compute and bandwidth ceilings."""
        return min(self.compute_roof_gops, self.bandwidth_roof_gops)

    @property
    def compute_bound(self) -> bool:
        """True when compute, not memory bandwidth, limits this layer."""
        return self.compute_roof_gops <= self.bandwidth_roof_gops


@dataclass(frozen=True)
class RooflineReport:
    """Roofline evaluation of a whole network."""

    device_name: str
    bandwidth_gbps: float
    peak_gops: float
    layers: List[LayerRoofline]

    @property
    def all_compute_bound(self) -> bool:
        """True when no layer is limited by memory bandwidth."""
        return all(layer.compute_bound for layer in self.layers)

    @property
    def bandwidth_bound_layers(self) -> List[str]:
        """Names of the layers limited by memory bandwidth."""
        return [layer.layer_name for layer in self.layers if not layer.compute_bound]

    def attainable_fraction(self) -> float:
        """Mean ratio of attainable to peak throughput across layers."""
        if not self.layers:
            return 1.0
        return sum(
            layer.attainable_gops for layer in self.layers
        ) / (self.peak_gops * len(self.layers))


def roofline_report(
    network: Network,
    m: int,
    parallel_pes: int,
    frequency_mhz: float = 200.0,
    r: int = 3,
    device: Optional[FpgaDevice] = None,
    bytes_per_element: int = 4,
    only_kernel_size: Optional[int] = 3,
) -> RooflineReport:
    """Roofline analysis of ``network`` on an ``F(m x m, r x r)`` engine."""
    device = device or virtex7_485t()
    peak_gops = 2.0 * r * r * m * m * parallel_pes * frequency_mhz * 1e6 / 1e9
    bandwidth = device.dram_bandwidth_gbps
    layers: List[LayerRoofline] = []
    for layer in network.conv_layers:
        if only_kernel_size is not None and layer.kernel_size != only_kernel_size:
            continue
        intensity = layer_operational_intensity(layer, bytes_per_element)
        layers.append(
            LayerRoofline(
                layer_name=layer.name,
                operational_intensity=intensity,
                compute_roof_gops=peak_gops,
                bandwidth_roof_gops=bandwidth * intensity,
            )
        )
    return RooflineReport(
        device_name=device.name,
        bandwidth_gbps=bandwidth,
        peak_gops=peak_gops,
        layers=layers,
    )

"""The paper's primary contribution: DSE and the optimised Winograd engine.

Implements the analytical complexity models of Section III (Eqs. 4-7), the
latency/throughput models of Section IV-D (Eqs. 8-10), design-point
evaluation and design-space sweeps, Pareto and roofline analysis, the three
proposed designs of Section V and the Table I / Table II comparison builders.
"""

from .comparison import HeadlineClaims, headline_claims, performance_table, resource_table
from .complexity import (
    ComplexityBreakdown,
    complexity_breakdown,
    implementation_transform_complexity,
    multiplication_complexity,
    multiplication_reduction,
    spatial_multiplications,
    transform_complexity,
)
from .design_point import DesignPoint, evaluate_design
from .design_space import (
    GridEntry,
    SweepSpec,
    best_by,
    explore,
    frequency_range,
    sweep_multiplier_budgets,
    sweep_tile_sizes,
)
from .pareto import Objective, dominates, pareto_front, pareto_rank
from .proposed import PROPOSED_CONFIGS, OptimizationResult, optimize, proposed_designs
from .roofline import (
    LayerRoofline,
    RooflineReport,
    layer_operational_intensity,
    roofline_report,
)
from .throughput import (
    LatencyReport,
    ideal_throughput_gops,
    layer_cycles,
    layer_latency_seconds,
    multiplier_efficiency,
    network_latency,
    parallel_pes,
    throughput_gops,
)

__all__ = [
    "multiplication_complexity",
    "transform_complexity",
    "implementation_transform_complexity",
    "spatial_multiplications",
    "complexity_breakdown",
    "ComplexityBreakdown",
    "multiplication_reduction",
    "parallel_pes",
    "layer_cycles",
    "layer_latency_seconds",
    "network_latency",
    "LatencyReport",
    "throughput_gops",
    "ideal_throughput_gops",
    "multiplier_efficiency",
    "DesignPoint",
    "evaluate_design",
    "SweepSpec",
    "GridEntry",
    "frequency_range",
    "explore",
    "sweep_tile_sizes",
    "sweep_multiplier_budgets",
    "best_by",
    "Objective",
    "dominates",
    "pareto_front",
    "pareto_rank",
    "roofline_report",
    "RooflineReport",
    "LayerRoofline",
    "layer_operational_intensity",
    "PROPOSED_CONFIGS",
    "proposed_designs",
    "optimize",
    "OptimizationResult",
    "performance_table",
    "resource_table",
    "headline_claims",
    "HeadlineClaims",
]

"""Design-space exploration driver.

The paper explores the space spanned by the output tile size ``m``, the
multiplier budget ``mT`` (equivalently the PE count ``P``) and the clock
frequency, looking for the configurations with the best throughput, resource
efficiency and power efficiency (Section III plus the Fig. 6 sweep).  This
module owns the *specification* side of those sweeps — :class:`SweepSpec` and
its cartesian-product expansion — plus the classic single-network entry
points (:func:`explore`, :func:`sweep_tile_sizes`,
:func:`sweep_multiplier_budgets`, :func:`best_by`).

The evaluation itself is delegated to :mod:`repro.dse`, the campaign-scale
engine that memoises repeated ``(m, r)`` transform/complexity work and can
fan evaluations out over a process pool; ``explore`` keeps its historical
signature and ordering, so existing callers see the same points — just
faster.  :class:`SweepSpec` is also the grid vocabulary of the declarative
:mod:`repro.experiments` layer: its ``to_dict``/``from_dict`` round-trip is
what lets an :class:`~repro.experiments.ExperimentSpec` describe sweeps in a
JSON file and hand them to any registered search strategy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, virtex7_485t
from ..nn.model import Network
from .design_point import DesignPoint

if TYPE_CHECKING:  # pragma: no cover - typing only; runtime import would cycle
    from ..dse.engine import CacheLike, ExecutorConfig

__all__ = [
    "GridEntry",
    "SweepSpec",
    "frequency_range",
    "explore",
    "sweep_tile_sizes",
    "sweep_multiplier_budgets",
    "best_by",
]


class GridEntry(NamedTuple):
    """One fully specified configuration of a design-space grid.

    ``bit_width`` selects the fixed-point numeric backend
    (:mod:`repro.winograd.quantized`); ``None`` is the paper's float
    datapath.  ``error_budget`` carries the sweep-level accuracy
    constraint down to the per-entry feasibility check.
    """

    m: int
    r: int
    multiplier_budget: Optional[int]
    frequency_mhz: float
    shared_data_transform: bool
    bit_width: Optional[int] = None
    error_budget: Optional[float] = None


def frequency_range(
    start_mhz: float, stop_mhz: float, step_mhz: float = 50.0
) -> Tuple[float, ...]:
    """Inclusive frequency ladder from ``start_mhz`` to ``stop_mhz``.

    ``frequency_range(100, 300, 50)`` yields ``(100.0, 150.0, 200.0, 250.0,
    300.0)``.  The stop point is included whenever it lands within a small
    tolerance of a step, so fractional steps behave intuitively.
    """
    for label, value in (("start", start_mhz), ("stop", stop_mhz), ("step", step_mhz)):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{label} frequency must be a number, got {value!r}")
        if not math.isfinite(value):
            raise ValueError(f"{label} frequency must be finite, got {value!r}")
    if start_mhz <= 0 or stop_mhz <= 0:
        raise ValueError("frequencies must be positive")
    if step_mhz <= 0:
        raise ValueError(f"step must be positive, got {step_mhz!r}")
    if stop_mhz < start_mhz:
        raise ValueError(
            f"stop frequency {stop_mhz!r} must be >= start frequency {start_mhz!r}"
        )
    count = int(math.floor((stop_mhz - start_mhz) / step_mhz + 1e-9)) + 1
    return tuple(float(start_mhz + index * step_mhz) for index in range(count))


def _field_tuple(value) -> tuple:
    """Materialize a sweep field: iterables become tuples, scalars wrap."""
    if hasattr(value, "__iter__") and not isinstance(value, str):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class SweepSpec:
    """Specification of a design-space sweep.

    Attributes
    ----------
    m_values:
        Output tile sizes to evaluate.
    multiplier_budgets:
        Multiplier budgets ``mT``; ``None`` entries mean "use the whole
        device's DSP budget".
    frequencies_mhz:
        Clock frequencies to evaluate.
    shared_data_transform:
        Architecture variant(s) to include.
    r:
        Kernel size (3 throughout the paper).
    r_values:
        Optional sequence of kernel sizes to sweep; when given it overrides
        ``r`` and the grid becomes ``m x r x budget x frequency x shared``.
    bit_widths:
        Numeric backends to sweep: ``None`` entries are the paper's float
        datapath, integers select the fixed-point pipeline of
        :mod:`repro.winograd.quantized` at that width.  The default sweeps
        only the float path, so existing specs expand identically.
    error_budget:
        Optional accuracy constraint: designs whose calibrated
        ``max_rel_error`` exceeds this are infeasible (dropped under
        ``skip_infeasible``, like designs that do not fit the device).
    """

    m_values: Sequence[int] = (2, 3, 4, 5, 6, 7)
    multiplier_budgets: Sequence[Optional[int]] = (None,)
    frequencies_mhz: Sequence[float] = (200.0,)
    shared_data_transform: Sequence[bool] = (True,)
    r: int = 3
    r_values: Optional[Sequence[int]] = None
    bit_widths: Sequence[Optional[int]] = (None,)
    error_budget: Optional[float] = None

    def __post_init__(self) -> None:
        # Materialize every sequence field once: one-shot iterables (e.g.
        # generators) must survive being read by both ``size`` and
        # ``configurations()``, tuples keep the frozen spec hashable, and a
        # bare scalar (``m_values=4``, ``shared_data_transform=False``)
        # means a one-value sweep rather than a TypeError.
        for field_name in (
            "m_values", "multiplier_budgets", "frequencies_mhz",
            "shared_data_transform", "bit_widths",
        ):
            object.__setattr__(self, field_name, _field_tuple(getattr(self, field_name)))
        if self.r_values is not None:
            object.__setattr__(self, "r_values", _field_tuple(self.r_values))
        self._validate()

    def _validate(self) -> None:
        """Reject empty axes and out-of-domain values with clear errors.

        An accidentally empty axis (``m_values=()``) used to expand to a
        silent zero-point sweep; every axis except ``r_values`` now raises
        instead (an explicitly empty ``r_values`` keeps its documented
        "sweep nothing" meaning, since ``None`` — not ``()`` — is its
        neutral value).
        """
        for field_name in (
            "m_values", "multiplier_budgets", "frequencies_mhz",
            "shared_data_transform", "bit_widths",
        ):
            if not getattr(self, field_name):
                raise ValueError(
                    f"SweepSpec.{field_name} is empty — an empty axis would "
                    "silently sweep nothing; list at least one value"
                )
        for m in self.m_values:
            if not isinstance(m, int) or isinstance(m, bool) or m < 1:
                raise ValueError(f"m_values entries must be integers >= 1, got {m!r}")
        for r in self.effective_r_values:
            if not isinstance(r, int) or isinstance(r, bool) or r < 1:
                raise ValueError(f"kernel sizes must be integers >= 1, got {r!r}")
        for budget in self.multiplier_budgets:
            if budget is None:
                continue
            if not isinstance(budget, int) or isinstance(budget, bool) or budget < 1:
                raise ValueError(
                    f"multiplier_budgets entries must be None or integers >= 1, got {budget!r}"
                )
        for frequency in self.frequencies_mhz:
            if (
                not isinstance(frequency, (int, float))
                or isinstance(frequency, bool)
                or not math.isfinite(frequency)
                or frequency <= 0
            ):
                raise ValueError(
                    f"frequencies_mhz entries must be positive finite numbers, got {frequency!r}"
                )
        for shared in self.shared_data_transform:
            if not isinstance(shared, bool):
                raise ValueError(
                    f"shared_data_transform entries must be booleans, got {shared!r}"
                )
        from ..winograd.quantized import validate_bit_width

        for bit_width in self.bit_widths:
            validate_bit_width(bit_width)
        if self.error_budget is not None:
            if (
                not isinstance(self.error_budget, (int, float))
                or isinstance(self.error_budget, bool)
                or not math.isfinite(self.error_budget)
                or self.error_budget <= 0
            ):
                raise ValueError(
                    f"error_budget must be None or a positive finite number, "
                    f"got {self.error_budget!r}"
                )

    # ------------------------------------------------------------------ #
    @property
    def effective_r_values(self) -> Tuple[int, ...]:
        """Kernel sizes actually swept: ``r_values`` when given, else ``(r,)``.

        An explicitly empty ``r_values`` sequence means "sweep nothing",
        exactly like an empty ``m_values``; only ``None`` falls back to
        ``r``.
        """
        if self.r_values is not None:
            return tuple(self.r_values)
        return (self.r,)

    @property
    def size(self) -> int:
        """Number of grid configurations this spec expands to."""
        return (
            len(self.m_values)
            * len(self.effective_r_values)
            * len(self.multiplier_budgets)
            * len(self.frequencies_mhz)
            * len(self.shared_data_transform)
            * len(self.bit_widths)
        )

    def configurations(self) -> Iterator[GridEntry]:
        """Expand the spec into grid entries in canonical nesting order.

        The nesting (``m`` -> ``r`` -> budget -> frequency -> shared ->
        bit-width) matches the historical ``explore`` loop with the new
        axis innermost, so pre-existing specs keep their ordering.
        """
        for m in self.m_values:
            for r in self.effective_r_values:
                for budget in self.multiplier_budgets:
                    for frequency in self.frequencies_mhz:
                        for shared in self.shared_data_transform:
                            for bit_width in self.bit_widths:
                                yield GridEntry(
                                    m, r, budget, frequency, shared,
                                    bit_width, self.error_budget,
                                )

    # ------------------------------------------------------------------ #
    def with_frequencies(self, frequencies_mhz: Sequence[float]) -> "SweepSpec":
        """Copy of the spec with a different frequency list."""
        return replace(self, frequencies_mhz=tuple(frequencies_mhz))

    def with_frequency_range(
        self, start_mhz: float, stop_mhz: float, step_mhz: float = 50.0
    ) -> "SweepSpec":
        """Copy of the spec sweeping an inclusive frequency ladder."""
        return self.with_frequencies(frequency_range(start_mhz, stop_mhz, step_mhz))

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-ready representation; inverse of :meth:`from_dict`.

        The accuracy axes are emitted only when set off their defaults:
        a float-only spec serializes exactly as it did before the axes
        existed, keeping :meth:`ExperimentSpec.fingerprint` (and with it
        every stored-result index key) stable.
        """
        data = {
            "m_values": list(self.m_values),
            "multiplier_budgets": list(self.multiplier_budgets),
            "frequencies_mhz": [float(f) for f in self.frequencies_mhz],
            "shared_data_transform": list(self.shared_data_transform),
            "r": self.r,
            "r_values": None if self.r_values is None else list(self.r_values),
        }
        if tuple(self.bit_widths) != (None,):
            data["bit_widths"] = list(self.bit_widths)
        if self.error_budget is not None:
            data["error_budget"] = float(self.error_budget)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys raise)."""
        if not isinstance(data, dict):
            raise ValueError(f"sweep spec must be a mapping, got {type(data).__name__}")
        known = {
            "m_values", "multiplier_budgets", "frequencies_mhz",
            "shared_data_transform", "r", "r_values", "bit_widths", "error_budget",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SweepSpec fields {sorted(unknown)}; known fields: {sorted(known)}"
            )
        return cls(**data)


def explore(
    network: Network,
    spec: SweepSpec = SweepSpec(),
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    skip_infeasible: bool = True,
    *,
    cache: "CacheLike" = None,
    executor: "Optional[ExecutorConfig]" = None,
) -> List[DesignPoint]:
    """Evaluate every configuration of ``spec`` on ``network``.

    Parameters
    ----------
    skip_infeasible:
        Drop configurations that cannot host a single PE within the given
        multiplier budget or that exceed the device's DSP capacity; when
        ``False`` such configurations raise instead.
    cache:
        A :class:`repro.dse.EvaluationCache` to memoise repeated work in, the
        shared global cache when ``None``, or ``False`` to disable caching
        entirely (every point is re-evaluated from scratch).  A supplied
        cache serves the serial path; process-pool workers memoise in their
        own per-process caches (``False`` disables both).
    executor:
        A :class:`repro.dse.ExecutorConfig` selecting serial, vectorized
        (NumPy batch, bit-identical results) or process-pool execution;
        ``None`` uses the serial path.
    """
    from ..dse.engine import explore_cached  # deferred: repro.dse builds on this module

    device = device or virtex7_485t()
    return explore_cached(
        network,
        spec,
        device=device,
        calibration=calibration,
        skip_infeasible=skip_infeasible,
        cache=cache,
        executor=executor,
    )


def sweep_tile_sizes(
    network: Network,
    m_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    r: int = 3,
) -> List[DesignPoint]:
    """Sweep the output tile size with the full device multiplier budget."""
    spec = SweepSpec(m_values=m_values, frequencies_mhz=(frequency_mhz,), r=r)
    return explore(network, spec, device=device)


def sweep_multiplier_budgets(
    network: Network,
    m: int,
    budgets: Sequence[int],
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    r: int = 3,
) -> List[DesignPoint]:
    """Sweep multiplier budgets for a fixed tile size (one Fig. 6 series)."""
    spec = SweepSpec(
        m_values=(m,),
        multiplier_budgets=tuple(budgets),
        frequencies_mhz=(frequency_mhz,),
        r=r,
    )
    return explore(network, spec, device=device)


def best_by(points: Iterable[DesignPoint], metric: str, maximize: bool = True) -> DesignPoint:
    """Pick the best design point by a named metric.

    ``metric`` is any numeric attribute of :class:`DesignPoint`, e.g.
    ``"throughput_gops"``, ``"power_efficiency"``, ``"multiplier_efficiency"``
    or ``"total_latency_ms"`` (use ``maximize=False`` for latency).

    Ties are broken by insertion order (the first of the tied points wins),
    so the choice is deterministic for any input ordering of equal-metric
    points.  A NaN metric value raises ``ValueError`` rather than silently
    poisoning the comparison.
    """
    best: Optional[DesignPoint] = None
    best_value = 0.0
    for point in points:
        try:
            value = float(getattr(point, metric))
        except AttributeError as error:
            raise ValueError(f"unknown metric {metric!r}") from error
        if math.isnan(value):
            raise ValueError(
                f"metric {metric!r} is NaN for design point {point.name!r}"
            )
        if best is None or (value > best_value if maximize else value < best_value):
            best = point
            best_value = value
    if best is None:
        raise ValueError("no design points to choose from")
    return best

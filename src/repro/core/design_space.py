"""Design-space exploration driver.

The paper explores the space spanned by the output tile size ``m``, the
multiplier budget ``mT`` (equivalently the PE count ``P``) and the clock
frequency, looking for the configurations with the best throughput, resource
efficiency and power efficiency (Section III plus the Fig. 6 sweep).  This
module runs those sweeps over arbitrary workloads and devices and returns
fully evaluated :class:`~repro.core.design_point.DesignPoint` objects ready
for Pareto analysis, ranking and reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, virtex7_485t
from ..nn.model import Network
from .design_point import DesignPoint, evaluate_design

__all__ = ["SweepSpec", "explore", "sweep_tile_sizes", "sweep_multiplier_budgets", "best_by"]


@dataclass(frozen=True)
class SweepSpec:
    """Specification of a design-space sweep.

    Attributes
    ----------
    m_values:
        Output tile sizes to evaluate.
    multiplier_budgets:
        Multiplier budgets ``mT``; ``None`` entries mean "use the whole
        device's DSP budget".
    frequencies_mhz:
        Clock frequencies to evaluate.
    shared_data_transform:
        Architecture variant(s) to include.
    r:
        Kernel size (3 throughout the paper).
    """

    m_values: Sequence[int] = (2, 3, 4, 5, 6, 7)
    multiplier_budgets: Sequence[Optional[int]] = (None,)
    frequencies_mhz: Sequence[float] = (200.0,)
    shared_data_transform: Sequence[bool] = (True,)
    r: int = 3


def explore(
    network: Network,
    spec: SweepSpec = SweepSpec(),
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    skip_infeasible: bool = True,
) -> List[DesignPoint]:
    """Evaluate every configuration of ``spec`` on ``network``.

    Parameters
    ----------
    skip_infeasible:
        Drop configurations that cannot host a single PE within the given
        multiplier budget or that exceed the device's DSP capacity; when
        ``False`` such configurations raise instead.
    """
    device = device or virtex7_485t()
    points: List[DesignPoint] = []
    for m in spec.m_values:
        for budget in spec.multiplier_budgets:
            for frequency in spec.frequencies_mhz:
                for shared in spec.shared_data_transform:
                    try:
                        point = evaluate_design(
                            network,
                            m=m,
                            r=spec.r,
                            multiplier_budget=budget,
                            frequency_mhz=frequency,
                            shared_data_transform=shared,
                            device=device,
                            calibration=calibration,
                        )
                    except ValueError:
                        if skip_infeasible:
                            continue
                        raise
                    if skip_infeasible and not point.resources.fits(device):
                        continue
                    points.append(point)
    return points


def sweep_tile_sizes(
    network: Network,
    m_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    r: int = 3,
) -> List[DesignPoint]:
    """Sweep the output tile size with the full device multiplier budget."""
    spec = SweepSpec(m_values=m_values, frequencies_mhz=(frequency_mhz,), r=r)
    return explore(network, spec, device=device)


def sweep_multiplier_budgets(
    network: Network,
    m: int,
    budgets: Sequence[int],
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    r: int = 3,
) -> List[DesignPoint]:
    """Sweep multiplier budgets for a fixed tile size (one Fig. 6 series)."""
    spec = SweepSpec(
        m_values=(m,),
        multiplier_budgets=tuple(budgets),
        frequencies_mhz=(frequency_mhz,),
        r=r,
    )
    return explore(network, spec, device=device)


def best_by(points: Iterable[DesignPoint], metric: str, maximize: bool = True) -> DesignPoint:
    """Pick the best design point by a named metric.

    ``metric`` is any numeric attribute of :class:`DesignPoint`, e.g.
    ``"throughput_gops"``, ``"power_efficiency"``, ``"multiplier_efficiency"``
    or ``"total_latency_ms"`` (use ``maximize=False`` for latency).
    """
    points = list(points)
    if not points:
        raise ValueError("no design points to choose from")
    try:
        keyed = [(getattr(point, metric), point) for point in points]
    except AttributeError as error:
        raise ValueError(f"unknown metric {metric!r}") from error
    keyed.sort(key=lambda pair: pair[0], reverse=maximize)
    return keyed[0][1]

"""Pareto-frontier extraction over design points.

The paper's Section III discussion is, in essence, a two-objective trade-off
(multiplication savings vs. transform overhead; throughput vs. resources /
power).  This module provides a small generic multi-objective Pareto filter
over :class:`~repro.core.design_point.DesignPoint` collections so the DSE can
report the non-dominated configurations for any metric combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from .design_point import DesignPoint

__all__ = ["Objective", "dominates", "pareto_front", "pareto_rank"]


@dataclass(frozen=True)
class Objective:
    """One optimisation objective: a design-point metric and a direction."""

    metric: str
    maximize: bool = True

    def value(self, point: DesignPoint) -> float:
        """The objective's metric read off ``point`` (ValueError if unknown)."""
        try:
            return float(getattr(point, self.metric))
        except AttributeError as error:
            raise ValueError(f"unknown metric {self.metric!r}") from error

    def better(self, a: float, b: float) -> bool:
        """Whether value ``a`` is strictly better than ``b``."""
        return a > b if self.maximize else a < b

    def no_worse(self, a: float, b: float) -> bool:
        """Whether value ``a`` is at least as good as ``b``."""
        return a >= b if self.maximize else a <= b


ObjectiveLike = Union[Objective, str, Tuple[str, bool]]


def _normalize(objectives: Sequence[ObjectiveLike]) -> List[Objective]:
    normalized: List[Objective] = []
    for objective in objectives:
        if isinstance(objective, Objective):
            normalized.append(objective)
        elif isinstance(objective, str):
            normalized.append(Objective(objective, True))
        else:
            metric, maximize = objective
            normalized.append(Objective(metric, maximize))
    if not normalized:
        raise ValueError("at least one objective is required")
    return normalized


def dominates(
    a: DesignPoint, b: DesignPoint, objectives: Sequence[ObjectiveLike]
) -> bool:
    """Whether design ``a`` Pareto-dominates design ``b``.

    ``a`` dominates ``b`` when it is no worse in every objective and strictly
    better in at least one.
    """
    objs = _normalize(objectives)
    strictly_better = False
    for objective in objs:
        value_a = objective.value(a)
        value_b = objective.value(b)
        if not objective.no_worse(value_a, value_b):
            return False
        if objective.better(value_a, value_b):
            strictly_better = True
    return strictly_better


def pareto_front(
    points: Iterable[DesignPoint], objectives: Sequence[ObjectiveLike]
) -> List[DesignPoint]:
    """Return the non-dominated subset of ``points`` for the given objectives.

    The result preserves the input ordering of the surviving points.
    """
    points = list(points)
    front: List[DesignPoint] = []
    for candidate in points:
        if any(dominates(other, candidate, objectives) for other in points if other is not candidate):
            continue
        front.append(candidate)
    return front


def pareto_rank(
    points: Iterable[DesignPoint], objectives: Sequence[ObjectiveLike]
) -> Dict[str, int]:
    """Assign a Pareto rank (0 = frontier) to every design point by name.

    Iteratively peels fronts, as in NSGA-style non-dominated sorting.  Useful
    for ordering a large sweep for presentation.
    """
    remaining = list(points)
    ranks: Dict[str, int] = {}
    rank = 0
    while remaining:
        front = pareto_front(remaining, objectives)
        if not front:  # safety: should not happen with a finite set
            for point in remaining:
                ranks[point.name] = rank
            break
        for point in front:
            ranks[point.name] = rank
        remaining = [point for point in remaining if point not in front]
        rank += 1
    return ranks

"""Latency and throughput models of Section IV-D (Eqs. 8-10).

The paper's performance numbers all derive from three expressions:

* Eq. (8): the number of parallel PEs a multiplier budget supports,
  ``P = floor(mT / (m + r - 1)^2)``;
* Eq. (9): the total time to produce an output feature map,
  ``Tt = (NHWCK / (m^2 P) + Dp - 1) * tc``;
* Eq. (10): throughput as spatial-equivalent operations per second,
  ``Throughput = OS / Tt``.

This module evaluates them per layer, per group and per network, both in the
"floored" form used for the implementable designs of Table II and in the
"ideal" fractional-PE form the paper uses for the design-space plot of
Fig. 6 (where throughput scales exactly linearly with the multiplier budget).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..nn.layers import ConvLayer
from ..nn.model import Network

__all__ = [
    "parallel_pes",
    "layer_cycles",
    "layer_latency_seconds",
    "LatencyReport",
    "BatchLatencyTable",
    "network_latency",
    "batch_network_latency",
    "throughput_gops",
    "ideal_throughput_gops",
    "multiplier_efficiency",
]


def parallel_pes(m: int, r: int, multiplier_budget: int, fractional: bool = False) -> float:
    """Eq. (8): number of parallel PEs supported by ``multiplier_budget``.

    ``fractional=True`` returns the unfloored ratio used by the Fig. 6 sweep.
    """
    if m < 1 or r < 1:
        raise ValueError("m and r must be >= 1")
    if multiplier_budget < 0:
        raise ValueError("multiplier budget must be non-negative")
    per_pe = (m + r - 1) ** 2
    ratio = multiplier_budget / per_pe
    return ratio if fractional else float(int(ratio))


def layer_cycles(layer: ConvLayer, m: int, pes: float, pipeline_depth: int = 0) -> float:
    """Eq. (9) numerator: clock cycles to compute one layer.

    ``NHWCK / (m^2 P) + Dp - 1`` cycles; the pipeline-fill term matters only
    for tiny layers but is kept for fidelity with the paper.
    """
    if pes <= 0:
        raise ValueError("number of PEs must be positive")
    if m < 1:
        raise ValueError("m must be >= 1")
    cycles = layer.nhwck / (m * m * pes)
    if pipeline_depth > 0:
        cycles += pipeline_depth - 1
    return cycles


def layer_latency_seconds(
    layer: ConvLayer,
    m: int,
    pes: float,
    frequency_mhz: float,
    pipeline_depth: int = 0,
) -> float:
    """Eq. (9): latency of one layer in seconds at ``frequency_mhz``."""
    if frequency_mhz <= 0:
        raise ValueError("frequency must be positive")
    cycle_time = 1.0 / (frequency_mhz * 1e6)
    return layer_cycles(layer, m, pes, pipeline_depth) * cycle_time


@dataclass(frozen=True)
class LatencyReport:
    """Per-group and total latency of a network on one engine configuration."""

    m: int
    r: int
    parallel_pes: float
    frequency_mhz: float
    pipeline_depth: int
    group_latency_ms: Dict[str, float]
    total_latency_ms: float
    spatial_ops: int

    @property
    def throughput_gops(self) -> float:
        """Eq. (10): spatial-equivalent GOPS."""
        return self.spatial_ops / (self.total_latency_ms * 1e-3) / 1e9

    def multiplier_efficiency(self, multipliers: int) -> float:
        """GOPS per multiplier — the paper's multiplier-efficiency metric."""
        if multipliers <= 0:
            raise ValueError("multiplier count must be positive")
        return self.throughput_gops / multipliers


def network_latency(
    network: Network,
    m: int,
    pes: float,
    frequency_mhz: float = 200.0,
    r: int = 3,
    pipeline_depth: int = 0,
    only_kernel_size: Optional[int] = 3,
) -> LatencyReport:
    """Latency of a whole network on one engine configuration (Table II rows).

    Parameters
    ----------
    network:
        The workload (e.g. :func:`repro.nn.vgg.vgg16_d`).
    m, r:
        Engine minimal-filtering parameters.
    pes:
        Number of parallel PEs (may be fractional for ideal-scaling studies).
    frequency_mhz:
        Clock frequency (200 MHz in the paper).
    pipeline_depth:
        Pipeline depth ``Dp`` of Eq. (9); adds ``Dp - 1`` cycles per layer.
    only_kernel_size:
        When set, only conv layers with this kernel size are timed (VGG16-D is
        all-3x3 so every layer qualifies); other layers are skipped, matching
        the paper's focus on the Winograd-eligible convolutions.
    """
    group_cycles: Dict[str, float] = {}
    spatial_ops = 0
    for layer in network.conv_layers:
        if only_kernel_size is not None and layer.kernel_size != only_kernel_size:
            continue
        group = layer.group or layer.name
        group_cycles[group] = group_cycles.get(group, 0.0) + layer_cycles(
            layer, m, pes, pipeline_depth
        )
        spatial_ops += layer.flops
    cycle_time_ms = 1e3 / (frequency_mhz * 1e6)
    group_latency = {group: cycles * cycle_time_ms for group, cycles in group_cycles.items()}
    total = sum(group_latency.values())
    return LatencyReport(
        m=m,
        r=r,
        parallel_pes=pes,
        frequency_mhz=frequency_mhz,
        pipeline_depth=pipeline_depth,
        group_latency_ms=group_latency,
        total_latency_ms=total,
        spatial_ops=spatial_ops,
    )


@dataclass(frozen=True)
class BatchLatencyTable:
    """Per-group and total latency of one network over a plane of designs.

    The array twin of :class:`LatencyReport`: each mapping value (and the
    total) is an array aligned with the evaluated design plane.  Produced by
    :func:`batch_network_latency`; consumed by the vectorized DSE engine,
    which slices per-design :class:`LatencyReport` objects out of it.
    """

    m: int
    r: int
    pipeline_depth: int
    group_latency_ms: Dict[str, "object"]
    total_latency_ms: "object"
    spatial_ops: int

    @property
    def throughput_gops(self):
        """Eq. (10) per design — identical op order to the scalar property."""
        return self.spatial_ops / (self.total_latency_ms * 1e-3) / 1e9


def batch_network_latency(
    network: Network,
    m: int,
    pes,
    frequencies_mhz,
    r: int = 3,
    pipeline_depth: int = 0,
    only_kernel_size: Optional[int] = 3,
) -> BatchLatencyTable:
    """Vector twin of :func:`network_latency` over aligned design arrays.

    ``pes`` (integer PE counts) and ``frequencies_mhz`` are aligned arrays —
    one entry per design sharing this ``(m, r, pipeline_depth)`` group.  The
    per-layer walk, the group accumulation order and every float operation
    mirror the scalar path, so each slice of the result is bit-identical to
    the :class:`LatencyReport` the scalar evaluator would produce.
    """
    import numpy as np  # gated: only the vectorized DSE path needs numpy

    pes = np.asarray(pes)
    if m < 1:
        raise ValueError("m must be >= 1")
    if np.any(pes <= 0):
        raise ValueError("number of PEs must be positive")
    frequencies_mhz = np.asarray(frequencies_mhz)
    if np.any(frequencies_mhz <= 0):
        raise ValueError("frequency must be positive")
    from ..hw.frequency import batch_cycle_time_ms  # deferred: keeps core free of hw at import

    denominator = (m * m) * pes
    group_cycles: Dict[str, "object"] = {}
    spatial_ops = 0
    for layer in network.conv_layers:
        if only_kernel_size is not None and layer.kernel_size != only_kernel_size:
            continue
        group = layer.group or layer.name
        cycles = layer.nhwck / denominator
        if pipeline_depth > 0:
            cycles = cycles + (pipeline_depth - 1)
        previous = group_cycles.get(group)
        group_cycles[group] = cycles if previous is None else previous + cycles
        spatial_ops += layer.flops
    cycle_time_ms = batch_cycle_time_ms(frequencies_mhz)
    group_latency = {
        group: cycles * cycle_time_ms for group, cycles in group_cycles.items()
    }
    total = sum(group_latency.values())
    if not group_latency:
        # The scalar path divides by a zero total latency in this case.
        raise ZeroDivisionError("float division by zero")
    return BatchLatencyTable(
        m=m,
        r=r,
        pipeline_depth=pipeline_depth,
        group_latency_ms=group_latency,
        total_latency_ms=total,
        spatial_ops=spatial_ops,
    )


def throughput_gops(
    network: Network,
    m: int,
    multiplier_budget: int,
    frequency_mhz: float = 200.0,
    r: int = 3,
    fractional_pes: bool = False,
    pipeline_depth: int = 0,
) -> float:
    """Eq. (10) evaluated for a multiplier budget (Fig. 6 / Table II)."""
    pes = parallel_pes(m, r, multiplier_budget, fractional=fractional_pes)
    if pes <= 0:
        raise ValueError(
            f"multiplier budget {multiplier_budget} cannot host one F({m},{r}) PE"
        )
    report = network_latency(
        network, m, pes, frequency_mhz, r=r, pipeline_depth=pipeline_depth
    )
    return report.throughput_gops


def ideal_throughput_gops(
    m: int,
    r: int,
    multiplier_budget: int,
    frequency_mhz: float = 200.0,
    fractional_pes: bool = True,
) -> float:
    """Closed-form peak throughput used by the Fig. 6 design-space plot.

    With the pipeline-fill term neglected, Eq. (10) reduces to
    ``2 r^2 m^2 P f`` spatial-equivalent ops/s — independent of the workload.
    ``m = 1`` (spatial convolution) gives ``2 mT f`` with the PE granularity
    of ``r^2`` multipliers, matching the paper's "Spatial Conv" series.
    """
    pes = parallel_pes(m, r, multiplier_budget, fractional=fractional_pes)
    ops_per_cycle = 2.0 * r * r * m * m * pes
    return ops_per_cycle * frequency_mhz * 1e6 / 1e9


def multiplier_efficiency(throughput: float, multipliers: int) -> float:
    """GOPS per multiplier (Table II's last performance row)."""
    if multipliers <= 0:
        raise ValueError("multiplier count must be positive")
    return throughput / multipliers

"""The paper's proposed designs and a small configuration optimizer.

Section V evaluates three concrete instances of the proposed architecture on
the Virtex-7 device at 200 MHz:

==========  ====  ====================  =====
design      m, r  multipliers (mT)      PEs P
==========  ====  ====================  =====
proposed-2  2, 3  688                   43
proposed-3  3, 3  700                   28
proposed-4  4, 3  684                   19
==========  ====  ====================  =====

:func:`proposed_designs` evaluates exactly those three points on a workload;
:func:`optimize` searches the ``(m, P)`` space for the configuration that
maximises a chosen metric under device constraints — the procedure the paper
describes informally in Section III-C ("for m >= 5 ... it is infeasible").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, virtex7_485t
from ..nn.model import Network
from .design_point import DesignPoint, evaluate_design
from .design_space import SweepSpec, best_by, explore

__all__ = ["PROPOSED_CONFIGS", "proposed_designs", "optimize"]


#: The three implemented configurations of Table II: m -> (multipliers, PEs).
PROPOSED_CONFIGS: Dict[int, Dict[str, int]] = {
    2: {"multipliers": 688, "parallel_pes": 43},
    3: {"multipliers": 700, "parallel_pes": 28},
    4: {"multipliers": 684, "parallel_pes": 19},
}


def proposed_designs(
    network: Network,
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    include_pipeline_depth: bool = False,
) -> List[DesignPoint]:
    """Evaluate the paper's three proposed designs on ``network``.

    ``include_pipeline_depth=False`` matches the paper's Table II numbers,
    which neglect the (sub-microsecond) pipeline-fill term of Eq. (9).
    """
    device = device or virtex7_485t()
    points = []
    for m, config in sorted(PROPOSED_CONFIGS.items()):
        points.append(
            evaluate_design(
                network,
                m=m,
                r=3,
                parallel_pes=config["parallel_pes"],
                frequency_mhz=frequency_mhz,
                shared_data_transform=True,
                device=device,
                calibration=calibration,
                include_pipeline_depth=include_pipeline_depth,
                name=f"proposed-m{m}",
            )
        )
    return points


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of :func:`optimize`: the winner plus the explored space."""

    best: DesignPoint
    explored: List[DesignPoint]
    metric: str

    @property
    def ranking(self) -> List[DesignPoint]:
        """All feasible points sorted best-first by the optimisation metric."""
        reverse = self.metric not in ("total_latency_ms", "power_watts")
        return sorted(
            self.explored, key=lambda p: getattr(p, self.metric), reverse=reverse
        )


def optimize(
    network: Network,
    metric: str = "throughput_gops",
    m_values: Sequence[int] = (2, 3, 4, 5, 6, 7),
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> OptimizationResult:
    """Search the tile-size space for the best design under device constraints.

    Every candidate uses the maximum PE count its multiplier budget allows
    (Eq. (8) with the device's full DSP budget).  ``metric`` may be any
    numeric :class:`DesignPoint` attribute; latency and power are minimised,
    everything else is maximised.
    """
    device = device or virtex7_485t()
    spec = SweepSpec(m_values=tuple(m_values), frequencies_mhz=(frequency_mhz,))
    explored = explore(network, spec, device=device, calibration=calibration)
    if not explored:
        raise ValueError("no feasible design point found on the given device")
    maximize = metric not in ("total_latency_ms", "power_watts")
    best = best_by(explored, metric, maximize=maximize)
    return OptimizationResult(best=best, explored=explored, metric=metric)

"""Design points: one fully evaluated engine configuration on one workload.

A :class:`DesignPoint` ties together everything the paper reports about a
configuration — the minimal-algorithm parameters, the PE count, the modelled
resources and power, and the Table II performance metrics (latency per group,
throughput, multiplier efficiency, power efficiency) — so the design-space
exploration, the Pareto analysis and the benchmark harness all speak the same
vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol

from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, virtex7_485t
from ..hw.engine import EngineConfig, EngineModel, build_engine
from ..hw.power import PowerModel
from ..hw.resources import ResourceEstimate
from ..nn.model import Network
from ..winograd.quantized import calibrated_error, validate_bit_width
from .complexity import (
    implementation_transform_complexity,
    multiplication_complexity,
    spatial_multiplications,
)
from .throughput import LatencyReport, network_latency

__all__ = ["ComponentProvider", "DesignPoint", "DirectComponents", "evaluate_design"]


@dataclass(frozen=True)
class DesignPoint:
    """A fully evaluated accelerator design.

    Attributes map one-to-one onto the rows of the paper's Table II plus the
    Section III complexity quantities for the same configuration.
    """

    name: str
    m: int
    r: int
    parallel_pes: int
    multipliers: int
    frequency_mhz: float
    shared_data_transform: bool
    device_name: str
    precision: str

    # Performance
    latency: LatencyReport
    throughput_gops: float
    multiplier_efficiency: float

    # Physical
    resources: ResourceEstimate
    power_watts: float
    power_efficiency: float

    # Complexity
    spatial_multiplications: float
    winograd_multiplications: float
    implementation_transform_ops: float

    # Provenance
    engine: Optional[EngineModel] = field(default=None, compare=False, repr=False)
    workload_name: str = ""

    # Accuracy (the third DSE axis): the numeric backend and its measured
    # error from the per-(m, r, bit_width) calibration table.  ``None``
    # bit_width is the paper's float datapath.
    bit_width: Optional[int] = None
    max_rel_error: float = 0.0
    mean_rel_error: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def total_latency_ms(self) -> float:
        """Overall latency for the workload in milliseconds."""
        return self.latency.total_latency_ms

    @property
    def group_latency_ms(self) -> Dict[str, float]:
        """Per-group latency in milliseconds (Conv1..Conv5 for VGG16-D)."""
        return self.latency.group_latency_ms

    @property
    def multiplication_saving_factor(self) -> float:
        """Spatial / Winograd multiplication ratio for this ``m``."""
        return self.spatial_multiplications / self.winograd_multiplications

    def speedup_over(self, other: "DesignPoint") -> float:
        """Throughput ratio of this design over ``other``."""
        return self.throughput_gops / other.throughput_gops

    def power_efficiency_over(self, other: "DesignPoint") -> float:
        """Power-efficiency ratio of this design over ``other``."""
        return self.power_efficiency / other.power_efficiency

    def summary_row(self) -> Dict[str, float]:
        """Flat dict used by the reporting layer for Table II style output."""
        row: Dict[str, float] = {
            "m": self.m,
            "r": self.r,
            "multipliers": self.multipliers,
            "pes": self.parallel_pes,
            "frequency_mhz": self.frequency_mhz,
            "latency_ms": self.total_latency_ms,
            "throughput_gops": self.throughput_gops,
            "multiplier_efficiency": self.multiplier_efficiency,
            "power_w": self.power_watts,
            "power_efficiency": self.power_efficiency,
            "luts": self.resources.luts,
            "registers": self.resources.registers,
            "dsp_slices": self.resources.dsp_slices,
            "max_rel_error": self.max_rel_error,
        }
        if self.bit_width is not None:
            row["bit_width"] = self.bit_width
        for group, value in sorted(self.group_latency_ms.items()):
            row[f"latency_{group.lower()}_ms"] = value
        return row


class ComponentProvider(Protocol):
    """Interface ``evaluate_design`` uses to resolve its sub-models.

    ``evaluate_design`` resolves the engine build, latency and complexity
    terms through a provider object so that alternative strategies —
    notably the memoising cache of :mod:`repro.dse` — can reuse the *same*
    evaluation body instead of maintaining a diverging copy.
    """

    def engine(self, config, device, calibration):
        """The engine resource/performance model for ``config``."""
        ...

    def latency(self, network, m, pes, frequency_mhz, r, pipeline_depth):
        """The per-network latency report."""
        ...

    def spatial_multiplications(self, network):
        """Spatial-convolution multiplication count of ``network``."""
        ...

    def multiplication_complexity(self, network, m):
        """Winograd multiplication complexity for tile size ``m``."""
        ...

    def implementation_transform_complexity(self, network, m, parallel_pes):
        """Implementation transform operation count (Eq. 6 family)."""
        ...

    def tile_error_stats(self, m, r, bit_width):
        """Calibrated numerical-error statistics for ``(m, r, bit_width)``."""
        ...


class DirectComponents:
    """Default :class:`ComponentProvider`: every model evaluated directly.

    Each method mirrors the signature of the underlying function.
    """

    def engine(self, config, device, calibration):
        """Build the engine model directly (no memoisation)."""
        return build_engine(config, device=device, calibration=calibration)

    def latency(self, network, m, pes, frequency_mhz, r, pipeline_depth):
        """Evaluate the latency model directly."""
        return network_latency(
            network,
            m=m,
            pes=pes,
            frequency_mhz=frequency_mhz,
            r=r,
            pipeline_depth=pipeline_depth,
        )

    def spatial_multiplications(self, network):
        """Evaluate the spatial multiplication count directly."""
        return spatial_multiplications(network)

    def multiplication_complexity(self, network, m):
        """Evaluate the Winograd multiplication complexity directly."""
        return multiplication_complexity(network, m)

    def implementation_transform_complexity(self, network, m, parallel_pes):
        """Evaluate the implementation transform complexity directly."""
        return implementation_transform_complexity(network, m, parallel_pes)

    def tile_error_stats(self, m, r, bit_width):
        """Measure (or fetch the memoised) calibration-table entry."""
        return calibrated_error(m, r, bit_width)


_DIRECT_COMPONENTS = DirectComponents()


def evaluate_design(
    network: Network,
    m: int,
    r: int = 3,
    parallel_pes: Optional[int] = None,
    multiplier_budget: Optional[int] = None,
    frequency_mhz: float = 200.0,
    shared_data_transform: bool = True,
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    include_pipeline_depth: bool = True,
    name: Optional[str] = None,
    components: Optional[ComponentProvider] = None,
    bit_width: Optional[int] = None,
) -> DesignPoint:
    """Evaluate one engine configuration on one workload.

    Either ``parallel_pes`` or ``multiplier_budget`` may be given; when both
    are omitted the PE count is derived from the device's DSP budget
    (Eq. (8)).

    ``components`` swaps the sub-model provider (see
    :class:`DirectComponents`); the memoising DSE layer passes its cache
    here so cached and uncached evaluation share this single body.

    ``bit_width`` selects the numeric backend whose calibrated error is
    attached to the point (``None`` — the float datapath — still carries
    the measured float32 tile error).  An unsupported width, or one whose
    quantized transform constants exhaust the fixed-point headroom,
    raises ``ValueError`` like any other infeasible configuration.

    Returns a :class:`DesignPoint` carrying performance, resource, power and
    complexity metrics.
    """
    components = components or _DIRECT_COMPONENTS
    device = device or virtex7_485t()
    validate_bit_width(bit_width)
    if parallel_pes is None and multiplier_budget is not None:
        per_pe = (m + r - 1) ** 2
        parallel_pes = multiplier_budget // per_pe
        if parallel_pes < 1:
            raise ValueError(
                f"multiplier budget {multiplier_budget} cannot host one F({m},{r}) PE"
            )
    config = EngineConfig(
        m=m,
        r=r,
        parallel_pes=parallel_pes,
        shared_data_transform=shared_data_transform,
        frequency_mhz=frequency_mhz,
    )
    engine = components.engine(config, device, calibration)

    pipeline_depth = engine.pipeline_depth if include_pipeline_depth else 0
    latency = components.latency(
        network, m, engine.parallel_pes, frequency_mhz, r, pipeline_depth
    )
    throughput = latency.throughput_gops
    power_model = PowerModel(calibration.power)
    power = power_model.total_watts(engine.resources, frequency_mhz)
    error_stats = components.tile_error_stats(m, r, bit_width)

    default_name = f"F({m}x{m},{r}x{r})-P{engine.parallel_pes}"
    if bit_width is not None:
        default_name = f"{default_name}-Q{bit_width}"
    point_name = name or default_name
    return DesignPoint(
        name=point_name,
        m=m,
        r=r,
        parallel_pes=engine.parallel_pes,
        multipliers=engine.total_multipliers,
        frequency_mhz=frequency_mhz,
        shared_data_transform=shared_data_transform,
        device_name=device.name,
        precision=config.precision.name,
        latency=latency,
        throughput_gops=throughput,
        multiplier_efficiency=throughput / engine.total_multipliers,
        resources=engine.resources,
        power_watts=power,
        power_efficiency=throughput / power,
        spatial_multiplications=float(components.spatial_multiplications(network)),
        winograd_multiplications=components.multiplication_complexity(network, m),
        implementation_transform_ops=components.implementation_transform_complexity(
            network, m, engine.parallel_pes
        ),
        engine=engine,
        workload_name=network.name,
        bit_width=bit_width,
        max_rel_error=error_stats.max_rel,
        mean_rel_error=error_stats.mean_rel,
    )

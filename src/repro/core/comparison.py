"""Comparison tables: the reproduction's version of Tables I and II.

Assembles design points (proposed designs plus baselines) into structured
comparison records, computes the headline ratios the paper's abstract quotes
(4.75x throughput, 1.44x power efficiency, 53.6 % LUT savings, 2.67x
multipliers) and exposes them to the benchmark harness and EXPERIMENTS.md
generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines.podili import podili_design, podili_normalized_design, reference_style_design
from ..baselines.qiu import qiu_published_design
from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, virtex7_485t
from ..nn.model import Network
from .design_point import DesignPoint
from .proposed import PROPOSED_CONFIGS, proposed_designs

__all__ = ["HeadlineClaims", "performance_table", "resource_table", "headline_claims"]


def performance_table(
    network: Network,
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> List[DesignPoint]:
    """Build the full Table II line-up: [12], [3], [3]a and the three proposed designs."""
    device = device or virtex7_485t()
    points: List[DesignPoint] = [
        qiu_published_design(network),
        podili_design(network, frequency_mhz=frequency_mhz, calibration=calibration),
        podili_normalized_design(
            network, device=device, frequency_mhz=frequency_mhz, calibration=calibration
        ),
    ]
    points.extend(
        proposed_designs(
            network, device=device, frequency_mhz=frequency_mhz, calibration=calibration
        )
    )
    return points


def resource_table(
    network: Network,
    m: int = 4,
    parallel_pes: Optional[int] = None,
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> Dict[str, DesignPoint]:
    """Build the Table I comparison: reference-[3]-style vs. proposed, same m and P."""
    device = device or virtex7_485t()
    if parallel_pes is None:
        parallel_pes = PROPOSED_CONFIGS.get(m, {}).get("parallel_pes")
        if parallel_pes is None:
            raise ValueError(f"no default PE count for m={m}; pass parallel_pes explicitly")
    reference = reference_style_design(
        network, m=m, parallel_pes=parallel_pes, device=device, calibration=calibration
    )
    proposed = [
        point
        for point in proposed_designs(network, device=device, calibration=calibration)
        if point.m == m
    ][0]
    return {"reference_design": reference, "proposed_design": proposed}


@dataclass(frozen=True)
class HeadlineClaims:
    """The abstract's headline ratios, as reproduced by the models."""

    throughput_improvement: float
    power_efficiency_improvement_m2: float
    multiplier_ratio: float
    lut_savings_pct: float
    multiplier_efficiency_best: float

    def as_dict(self) -> Dict[str, float]:
        """The comparison as a plain metric-name -> value mapping."""
        return {
            "throughput_improvement": self.throughput_improvement,
            "power_efficiency_improvement_m2": self.power_efficiency_improvement_m2,
            "multiplier_ratio": self.multiplier_ratio,
            "lut_savings_pct": self.lut_savings_pct,
            "multiplier_efficiency_best": self.multiplier_efficiency_best,
        }


def headline_claims(
    network: Network,
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> HeadlineClaims:
    """Reproduce the abstract's claims from the analytical models.

    * throughput improvement — proposed m=4 vs. the original [3] (4.75x in the paper);
    * power-efficiency improvement — proposed m=2 vs. [3] (1.44x);
    * multiplier ratio — proposed m=4 vs. [3] (2.67x);
    * LUT savings — proposed vs. reference-style design at m=4, 19 PEs (53.6 %).
    """
    device = device or virtex7_485t()
    podili = podili_design(network, calibration=calibration)
    proposed = proposed_designs(network, device=device, calibration=calibration)
    by_m = {point.m: point for point in proposed}
    table1 = resource_table(network, m=4, device=device, calibration=calibration)
    lut_savings = 100.0 * (
        1.0
        - table1["proposed_design"].resources.luts
        / table1["reference_design"].resources.luts
    )
    return HeadlineClaims(
        throughput_improvement=by_m[4].throughput_gops / podili.throughput_gops,
        power_efficiency_improvement_m2=by_m[2].power_efficiency / podili.power_efficiency,
        multiplier_ratio=by_m[4].multipliers / podili.multipliers,
        lut_savings_pct=lut_savings,
        multiplier_efficiency_best=by_m[4].multiplier_efficiency,
    )

"""Request tracing: one id per request, carried across process hops.

A trace id is a short opaque token minted when a request enters the system
(usually by :class:`~repro.service.client.ServiceClient`) and repeated in
every log line and HTTP hop that serves it — client → server →
micro-batcher → job manager → lease protocol → fleet worker.  Transport is
the ``X-Repro-Trace-Id`` header; within a process the current id lives in a
:mod:`contextvars` variable so deeply nested code (and the structured
logger) can read it without parameter plumbing.

The id is sixteen lowercase hex characters.  Anything arriving over the
wire is validated against :data:`TRACE_ID_PATTERN` (alphanumerics plus
dashes, length ≤ 64) so callers may send their own correlation tokens;
malformed values are replaced rather than propagated.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import re
from typing import Iterator, Optional

__all__ = [
    "TRACE_HEADER",
    "TRACE_ID_PATTERN",
    "new_trace_id",
    "current_trace_id",
    "set_trace_id",
    "valid_trace_id",
    "trace_context",
]

#: HTTP header carrying the trace id between client, server and workers.
TRACE_HEADER = "X-Repro-Trace-Id"

#: Accepted wire format — anything else is discarded and re-minted.
TRACE_ID_PATTERN = re.compile(r"^[A-Za-z0-9-]{1,64}$")

_current: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh sixteen-hex-character trace id."""
    return os.urandom(8).hex()


def current_trace_id() -> Optional[str]:
    """The trace id bound to the current context, if any."""
    return _current.get()


def set_trace_id(trace_id: Optional[str]) -> contextvars.Token:
    """Bind ``trace_id`` to the current context; returns the reset token."""
    return _current.set(trace_id)


def valid_trace_id(candidate: object) -> Optional[str]:
    """``candidate`` if it is a well-formed trace id, else ``None``."""
    if isinstance(candidate, str) and TRACE_ID_PATTERN.match(candidate):
        return candidate
    return None


@contextlib.contextmanager
def trace_context(trace_id: Optional[str] = None) -> Iterator[str]:
    """Run a block under ``trace_id`` (minting one when not given)."""
    token = _current.set(trace_id or new_trace_id())
    try:
        yield _current.get()  # type: ignore[misc]
    finally:
        _current.reset(token)

"""Thread-safe metrics primitives with Prometheus text exposition.

The service stack needs counters, gauges and latency histograms that many
threads (HTTP connections, the micro-batcher's executor, the job manager's
shard drivers) can update concurrently, and that a scraper can read without
pausing any of them.  Everything here is stdlib-only so ``repro.core`` /
``repro.dse`` never grow an observability dependency; the service layer
creates one :class:`MetricsRegistry` per server and instruments itself
lazily at construction time.

Three metric kinds, Prometheus semantics:

``Counter``
    Monotonically increasing float, ``inc()`` only.
``Gauge``
    Settable float, or a *callback* evaluated at scrape time — the natural
    shape for live values such as queue depth or store segment bytes that
    already exist in some data structure and should not be mirrored on
    every update.
``Histogram``
    Fixed log-spaced buckets (``le``-inclusive upper bounds, factor-2 from
    100 µs to ~105 s by default) with cumulative exposition plus
    ``quantile()`` estimation (p50/p95/p99) by linear interpolation inside
    the target bucket — the same model ``histogram_quantile`` applies
    server-side in Prometheus.

Labelled children are keyed by frozen tuples of label *values* in the
declared label-name order; ``family.labels(route="/health")`` returns the
child, creating it on first use.  A family and all its children share one
lock: updates are short (a float add), so contention stays negligible at
service request rates while keeping ``collect()`` snapshots coherent.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Factor-2 log-spaced upper bounds, 100 microseconds .. ~105 seconds.
#: Every latency histogram in the service shares these so percentile
#: estimates stay comparable across routes and subsystems.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    1e-4 * (2.0**i) for i in range(21)
)

_CallbackValue = Union[float, int, Mapping[Tuple[str, ...], float]]


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Family:
    """Shared machinery: child creation keyed by frozen label tuples."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values: str, **kwargs: str):
        """The child for one label-value combination (created on first use)."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as error:
                raise ValueError(f"unknown label {error.args[0]!r} for {self.name}") from None
            if len(kwargs) != len(self.labelnames):
                extra = set(kwargs) - set(self.labelnames)
                raise ValueError(f"unexpected labels {sorted(extra)} for {self.name}")
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects {len(self.labelnames)} label value(s), got {len(key)}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _items(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Counter(_Family):
    """A monotonically increasing value, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...).inc()")
        self._children[()].inc(amount)  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...).value")
        return self._children[()].value  # type: ignore[union-attr]

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        return [(key, child.value) for key, child in self._items()]


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge(_Family):
    """A settable value — or a callback evaluated at scrape time.

    A callback gauge never stores anything: ``collect()`` calls the
    function and exports what it returns.  For an unlabelled gauge the
    callback returns a number; for a labelled one it returns a mapping of
    label-value tuples to numbers, so one callback can export a whole
    family (e.g. shard counts per state) from a single snapshot.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], _CallbackValue]] = None,
    ):
        super().__init__(name, help, labelnames)
        self.callback = callback
        if not self.labelnames and callback is None:
            self._children[()] = self._make_child()

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...).set()")
        if self.callback is not None:
            raise ValueError(f"{self.name} is a callback gauge; it cannot be set")
        self._children[()].set(value)  # type: ignore[union-attr]

    def inc(self, amount: float = 1.0) -> None:
        if self.labelnames or self.callback is not None:
            raise ValueError(f"{self.name} does not support direct inc()")
        self._children[()].inc(amount)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self.labelnames or self.callback is not None:
            raise ValueError(f"{self.name} does not store a direct value")
        return self._children[()].value  # type: ignore[union-attr]

    def samples(self) -> List[Tuple[Tuple[str, ...], float]]:
        if self.callback is not None:
            try:
                result = self.callback()
            except Exception:
                return []  # a broken callback must never break the scrape
            if isinstance(result, Mapping):
                return sorted(
                    (tuple(str(part) for part in key), float(value))
                    for key, value in result.items()
                )
            return [((), float(result))]
        return [(key, child.value) for key, child in self._items()]


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]):
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot: +Inf
        self._sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    def snapshot(self) -> Tuple[List[int], float]:
        with self._lock:
            return list(self._counts), self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile by interpolating inside its bucket.

        Returns ``None`` on an empty histogram.  Values landing in the
        +Inf bucket are clamped to the largest finite bound — the estimate
        is then a lower bound, which is the honest answer a fixed-bucket
        histogram can give.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        counts, _ = self.snapshot()
        total = sum(counts)
        if total == 0:
            return None
        target = q * total
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if cumulative + bucket_count >= target and bucket_count > 0:
                lo = self._bounds[index - 1] if index > 0 else 0.0
                hi = self._bounds[index] if index < len(self._bounds) else self._bounds[-1]
                if hi <= lo:
                    return hi
                fraction = (target - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self._bounds[-1]


class Histogram(_Family):
    """Fixed-bucket latency distribution with quantile estimation."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be sorted, unique and non-empty")
        self.buckets = bounds
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...).observe()")
        self._children[()].observe(value)  # type: ignore[union-attr]

    def quantile(self, q: float) -> Optional[float]:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...).quantile()")
        return self._children[()].quantile(q)  # type: ignore[union-attr]

    @property
    def count(self) -> int:
        if self.labelnames:
            raise ValueError(f"{self.name} is labelled; use .labels(...).count")
        return self._children[()].count  # type: ignore[union-attr]

    def samples(self) -> List[Tuple[Tuple[str, ...], List[int], float]]:
        return [
            (key, *child.snapshot())  # type: ignore[misc]
            for key, child in self._items()
        ]


class MetricsRegistry:
    """A named collection of metric families with text + JSON exposition.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking twice
    for the same name returns the same family (and raises if the second
    request disagrees on kind or labels), so instrumentation points can
    declare what they need without coordinating creation order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family) or existing.labelnames != family.labelnames:
                    raise ValueError(
                        f"metric {family.name!r} already registered with a "
                        f"different kind or label set"
                    )
                return existing
            self._families[family.name] = family
            return family

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labelnames))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        callback: Optional[Callable[[], _CallbackValue]] = None,
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames, callback))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        family = Histogram(name, help, labelnames, buckets)
        return self._register(family)  # type: ignore[return-value]

    def families(self) -> List[_Family]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- exposition ----------------------------------------------------

    def exposition(self) -> str:
        """The Prometheus text format (version 0.0.4) of every family."""
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            if isinstance(family, Histogram):
                for key, counts, total in family.samples():
                    cumulative = 0
                    for bound, bucket_count in zip(family.buckets, counts):
                        cumulative += bucket_count
                        labels = _render_labels(
                            (*family.labelnames, "le"), (*key, _format_value(bound))
                        )
                        lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    cumulative += counts[-1]
                    labels = _render_labels((*family.labelnames, "le"), (*key, "+Inf"))
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    plain = _render_labels(family.labelnames, key)
                    lines.append(f"{family.name}_sum{plain} {_format_value(total)}")
                    lines.append(f"{family.name}_count{plain} {cumulative}")
            else:
                for key, value in family.samples():  # type: ignore[misc]
                    labels = _render_labels(family.labelnames, key)
                    lines.append(f"{family.name}{labels} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, dict]:
        """JSON twin of :meth:`exposition`, with percentile estimates."""
        payload: Dict[str, dict] = {}
        for family in self.families():
            entry: Dict[str, object] = {"type": family.kind, "help": family.help}
            samples: List[dict] = []
            if isinstance(family, Histogram):
                for key, counts, total in family.samples():
                    child = family._children[key]
                    count = sum(counts)
                    samples.append(
                        {
                            "labels": dict(zip(family.labelnames, key)),
                            "count": count,
                            "sum": total,
                            "p50": child.quantile(0.50),  # type: ignore[union-attr]
                            "p95": child.quantile(0.95),  # type: ignore[union-attr]
                            "p99": child.quantile(0.99),  # type: ignore[union-attr]
                        }
                    )
            else:
                for key, value in family.samples():  # type: ignore[misc]
                    samples.append(
                        {"labels": dict(zip(family.labelnames, key)), "value": value}
                    )
            entry["samples"] = samples
            payload[family.name] = entry
        return payload


def merge_label_values(*parts: Iterable[str]) -> Tuple[str, ...]:
    """Flatten label-value fragments into one frozen tuple."""
    merged: List[str] = []
    for part in parts:
        merged.extend(str(item) for item in part)
    return tuple(merged)

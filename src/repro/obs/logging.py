"""Structured JSON log lines, one event per line, trace-aware.

Every component of the service stack logs through a
:class:`StructuredLogger`: a named emitter that writes single-line JSON
objects to a stream (stderr by default, so human-readable stdout output
stays uncluttered).  Each line carries a monotonic-enough wall-clock
timestamp, the component name, an event name, the current trace id (read
from :mod:`repro.obs.tracing` automatically — callers never thread it
through), and whatever key/value fields the call site supplies.

Lines are machine-first: tests and operators ``json.loads`` them and
filter on ``event`` / ``trace_id``.  Emission is guarded by a lock so
lines from concurrent threads never interleave, and any serialization
surprise degrades to ``repr`` rather than raising into the hot path.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import IO, Optional

from .tracing import current_trace_id

__all__ = ["StructuredLogger", "get_logger"]


def _jsonable(value: object) -> object:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class StructuredLogger:
    """Named JSON-lines emitter; disabled loggers cost one attribute check."""

    def __init__(
        self,
        component: str,
        stream: Optional[IO[str]] = None,
        enabled: bool = True,
    ):
        self.component = component
        self.enabled = enabled
        self._stream = stream
        self._lock = threading.Lock()

    def event(self, event: str, **fields: object) -> Optional[dict]:
        """Emit one structured line; returns the record (or None if off)."""
        if not self.enabled:
            return None
        record = {
            "ts": round(time.time(), 6),
            "component": self.component,
            "event": event,
        }
        trace_id = fields.pop("trace_id", None) or current_trace_id()
        if trace_id is not None:
            record["trace_id"] = trace_id
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record, separators=(",", ":"))
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            print(line, file=stream, flush=True)
        return record


def get_logger(
    component: str,
    stream: Optional[IO[str]] = None,
    enabled: bool = True,
) -> StructuredLogger:
    """A fresh :class:`StructuredLogger` for ``component``."""
    return StructuredLogger(component, stream=stream, enabled=enabled)

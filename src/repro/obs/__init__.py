"""``repro.obs`` — stdlib-only observability for the service stack.

Three small layers, no third-party dependencies:

:mod:`repro.obs.metrics`
    :class:`MetricsRegistry` holding thread-safe :class:`Counter`,
    :class:`Gauge` (settable or scrape-time callback) and
    :class:`Histogram` (fixed log-spaced buckets, p50/p95/p99 estimation)
    families, rendered as Prometheus text exposition for ``GET /metrics``
    or as a JSON twin for ``GET /v1/stats``.
:mod:`repro.obs.tracing`
    Per-request trace ids propagated over the ``X-Repro-Trace-Id`` header
    and held in a :mod:`contextvars` variable inside each process.
:mod:`repro.obs.logging`
    :class:`StructuredLogger` — single-line JSON events on stderr, stamped
    with the current trace id automatically.

Only the service/worker layer imports this package; ``repro.core`` and
``repro.dse`` stay observability-free, and the registry instruments hot
paths lazily (metric families are created when a server starts, not at
import time).
"""

from .logging import StructuredLogger, get_logger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import (
    TRACE_HEADER,
    current_trace_id,
    new_trace_id,
    set_trace_id,
    trace_context,
    valid_trace_id,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredLogger",
    "TRACE_HEADER",
    "current_trace_id",
    "get_logger",
    "new_trace_id",
    "set_trace_id",
    "trace_context",
    "valid_trace_id",
]

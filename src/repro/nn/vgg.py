"""VGG network family (Simonyan & Zisserman, 2014) workload descriptions.

The paper's entire evaluation is carried out on configuration **D** of VGG-16
("VGG16 network D"), chosen because every convolutional layer uses 3x3
kernels so a single ``F(m x m, 3 x 3)`` engine serves the whole network.  The
other configurations (A, B, C, E) are provided as well so the design-space
exploration can be exercised on the full family.

Layer naming follows the usual ``convG_I`` convention and each layer carries a
``group`` tag (``Conv1`` .. ``Conv5``) matching the rows of the paper's
Table II and the x-axis of Fig. 1.
"""

from __future__ import annotations

from typing import Dict, List

from .layers import ConvLayer, FullyConnectedLayer, InputSpec, PoolLayer
from .model import Network

__all__ = ["vgg16_d", "vgg", "VGG_CONFIGS", "vgg16_group_workloads"]

# Configuration table from the VGG paper: each entry is the list of conv
# output-channel counts per block ("M" = max-pool between blocks is implicit:
# every block is followed by a 2x2 max-pool).
VGG_CONFIGS: Dict[str, List[List[int]]] = {
    # VGG-11
    "A": [[64], [128], [256, 256], [512, 512], [512, 512]],
    # VGG-13
    "B": [[64, 64], [128, 128], [256, 256], [512, 512], [512, 512]],
    # VGG-16 with some 1x1 convolutions (configuration C) — the 1x1 layers are
    # marked with a negative channel count sentinel below and handled in the
    # builder.
    "C": [[64, 64], [128, 128], [256, 256, -256], [512, 512, -512], [512, 512, -512]],
    # VGG-16 (configuration D) — the paper's workload.
    "D": [[64, 64], [128, 128], [256, 256, 256], [512, 512, 512], [512, 512, 512]],
    # VGG-19
    "E": [
        [64, 64],
        [128, 128],
        [256, 256, 256, 256],
        [512, 512, 512, 512],
        [512, 512, 512, 512],
    ],
}


def vgg(
    config: str = "D",
    batch: int = 1,
    input_size: int = 224,
    include_classifier: bool = True,
) -> Network:
    """Build a VGG network description.

    Parameters
    ----------
    config:
        One of ``"A"``, ``"B"``, ``"C"``, ``"D"``, ``"E"``.
    batch:
        Mini-batch size ``N``.
    input_size:
        Input spatial resolution (224 for ImageNet).
    include_classifier:
        Whether to append the three fully-connected layers.
    """
    config = config.upper()
    if config not in VGG_CONFIGS:
        raise ValueError(f"unknown VGG configuration {config!r}; choose from {sorted(VGG_CONFIGS)}")
    blocks = VGG_CONFIGS[config]
    spec = InputSpec(batch=batch, channels=3, height=input_size, width=input_size)
    network = Network(name=f"vgg16-{config.lower()}" if config in ("C", "D") else f"vgg-{config.lower()}", input_spec=spec)

    channels = 3
    size = input_size
    for block_index, block in enumerate(blocks, start=1):
        group = f"Conv{block_index}"
        for layer_index, out_channels in enumerate(block, start=1):
            kernel_size = 3
            padding = 1
            if out_channels < 0:
                # Configuration C's 1x1 convolutions.
                out_channels = -out_channels
                kernel_size = 1
                padding = 0
            network.add(
                ConvLayer(
                    name=f"conv{block_index}_{layer_index}",
                    in_channels=channels,
                    out_channels=out_channels,
                    height=size,
                    width=size,
                    kernel_size=kernel_size,
                    padding=padding,
                    batch=batch,
                    group=group,
                )
            )
            channels = out_channels
        network.add(
            PoolLayer(
                name=f"pool{block_index}",
                channels=channels,
                height=size,
                width=size,
                pool_size=2,
                stride=2,
                batch=batch,
            )
        )
        size //= 2

    if include_classifier:
        features = channels * size * size
        network.add(FullyConnectedLayer("fc6", features, 4096, batch=batch))
        network.add(FullyConnectedLayer("fc7", 4096, 4096, batch=batch))
        network.add(FullyConnectedLayer("fc8", 4096, 1000, batch=batch))
    return network


def vgg16_d(batch: int = 1, input_size: int = 224, include_classifier: bool = True) -> Network:
    """VGG-16 configuration D — the workload used throughout the paper."""
    return vgg("D", batch=batch, input_size=input_size, include_classifier=include_classifier)


def vgg16_group_workloads(batch: int = 1) -> Dict[str, int]:
    """``NHWCK`` workload per VGG16-D conv group (Conv1 .. Conv5).

    These are the per-group totals that Eq. (9) converts into the per-group
    latencies of Table II.
    """
    network = vgg16_d(batch=batch, include_classifier=False)
    return {
        group: sum(layer.nhwck for layer in layers)
        for group, layers in network.conv_groups().items()
    }

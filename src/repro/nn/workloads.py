"""Workload statistics helpers shared by the DSE and benchmark harness.

Wraps the layer/network descriptors into the aggregate quantities the paper's
equations consume: per-layer and per-group ``NHWCK``, spatial-convolution
operation counts ``OS`` (Eq. (10) numerator), and convenience scaling to
mini-batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .layers import ConvLayer
from .model import Network

__all__ = [
    "LayerWorkload",
    "layer_workload",
    "network_workloads",
    "group_workloads",
    "total_spatial_operations",
    "winograd_eligible_layers",
]


@dataclass(frozen=True)
class LayerWorkload:
    """Workload summary of one convolutional layer.

    ``spatial_ops`` counts multiply and add separately (2 ops per MAC), which
    is the convention behind the paper's GOPS figures (e.g. VGG16-D's
    convolutional part is ~30.7 GOPs).
    """

    name: str
    group: Optional[str]
    nhwck: int
    kernel_size: int
    macs: int
    spatial_ops: int
    output_pixels: int

    @property
    def gops(self) -> float:
        """Spatial operations in units of 10^9."""
        return self.spatial_ops / 1e9


def layer_workload(layer: ConvLayer) -> LayerWorkload:
    """Summarise one convolutional layer."""
    return LayerWorkload(
        name=layer.name,
        group=layer.group,
        nhwck=layer.nhwck,
        kernel_size=layer.kernel_size,
        macs=layer.macs,
        spatial_ops=layer.flops,
        output_pixels=layer.output_pixels,
    )


def network_workloads(network: Network) -> List[LayerWorkload]:
    """Per-layer workload summaries for all convolutional layers."""
    return [layer_workload(layer) for layer in network.conv_layers]


def group_workloads(network: Network) -> Dict[str, LayerWorkload]:
    """Aggregate workloads per conv group (VGG's Conv1..Conv5)."""
    result: Dict[str, LayerWorkload] = {}
    for group, layers in network.conv_groups().items():
        kernel_sizes = {layer.kernel_size for layer in layers}
        kernel_size = kernel_sizes.pop() if len(kernel_sizes) == 1 else 0
        result[group] = LayerWorkload(
            name=group,
            group=group,
            nhwck=sum(layer.nhwck for layer in layers),
            kernel_size=kernel_size,
            macs=sum(layer.macs for layer in layers),
            spatial_ops=sum(layer.flops for layer in layers),
            output_pixels=sum(layer.output_pixels for layer in layers),
        )
    return result


def total_spatial_operations(network: Network) -> int:
    """Total spatial-convolution operations ``OS`` of the network (Eq. (10))."""
    return network.total_conv_flops


def winograd_eligible_layers(network: Network, r: int = 3) -> List[ConvLayer]:
    """Conv layers a ``F(m x m, r x r)`` engine can execute directly.

    A layer qualifies when its kernel size equals ``r`` and it uses unit
    stride (the minimal algorithms assume dense, stride-1 output tiles).
    """
    return [
        layer
        for layer in network.conv_layers
        if layer.kernel_size == r and layer.stride == 1
    ]

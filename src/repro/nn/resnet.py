"""ResNet (He et al., 2016) workload descriptions.

ResNet-18 and ResNet-34 use 3x3 convolutions almost exclusively, which makes
them natural additional workloads for a Winograd engine DSE (the paper cites
ResNet as motivation for small-kernel fast algorithms).  Only the workload
shapes are modelled — residual additions and batch normalisation contribute
negligibly to the arithmetic the accelerator has to provide and are folded
into the layer list as metadata-free entries.
"""

from __future__ import annotations

from typing import List, Sequence

from .layers import ConvLayer, FullyConnectedLayer, InputSpec, PoolLayer
from .model import Network

__all__ = ["resnet18", "resnet34", "basic_block_layers"]


def basic_block_layers(
    name: str,
    in_channels: int,
    out_channels: int,
    size: int,
    stride: int,
    batch: int,
    group: str,
) -> List[ConvLayer]:
    """The two 3x3 convolutions of a ResNet basic block (plus any projection).

    The optional 1x1 projection convolution on the shortcut path is included
    when the block changes resolution or channel count.
    """
    layers = [
        ConvLayer(
            name=f"{name}_conv1",
            in_channels=in_channels,
            out_channels=out_channels,
            height=size,
            width=size,
            kernel_size=3,
            stride=stride,
            padding=1,
            batch=batch,
            group=group,
        ),
        ConvLayer(
            name=f"{name}_conv2",
            in_channels=out_channels,
            out_channels=out_channels,
            height=size // stride,
            width=size // stride,
            kernel_size=3,
            stride=1,
            padding=1,
            batch=batch,
            group=group,
        ),
    ]
    if stride != 1 or in_channels != out_channels:
        layers.append(
            ConvLayer(
                name=f"{name}_proj",
                in_channels=in_channels,
                out_channels=out_channels,
                height=size,
                width=size,
                kernel_size=1,
                stride=stride,
                padding=0,
                batch=batch,
                group=group,
            )
        )
    return layers


def _build_resnet(name: str, blocks_per_stage: Sequence[int], batch: int) -> Network:
    spec = InputSpec(batch=batch, channels=3, height=224, width=224)
    network = Network(name=name, input_spec=spec)
    network.add(
        ConvLayer(
            name="conv1",
            in_channels=3,
            out_channels=64,
            height=224,
            width=224,
            kernel_size=7,
            stride=2,
            padding=3,
            batch=batch,
            group="Stem",
        )
    )
    network.add(PoolLayer("maxpool", channels=64, height=112, width=112, pool_size=3, stride=2, batch=batch))

    channels = 64
    size = 56
    stage_channels = (64, 128, 256, 512)
    for stage_index, (num_blocks, out_channels) in enumerate(
        zip(blocks_per_stage, stage_channels), start=1
    ):
        group = f"Stage{stage_index}"
        for block_index in range(num_blocks):
            stride = 2 if (block_index == 0 and stage_index > 1) else 1
            for layer in basic_block_layers(
                name=f"layer{stage_index}_{block_index}",
                in_channels=channels,
                out_channels=out_channels,
                size=size,
                stride=stride,
                batch=batch,
                group=group,
            ):
                network.add(layer)
            if stride == 2:
                size //= 2
            channels = out_channels
    network.add(FullyConnectedLayer("fc", 512, 1000, batch=batch))
    return network


def resnet18(batch: int = 1) -> Network:
    """ResNet-18 layer stack (basic blocks: 2, 2, 2, 2)."""
    return _build_resnet("resnet18", (2, 2, 2, 2), batch)


def resnet34(batch: int = 1) -> Network:
    """ResNet-34 layer stack (basic blocks: 3, 4, 6, 3)."""
    return _build_resnet("resnet34", (3, 4, 6, 3), batch)

"""Functional forward-pass execution of a network description.

The design-space exploration itself only needs layer shapes, but the
reproduction also validates the *numerics* of the Winograd datapath
end-to-end: this module runs the convolutional part of a network on real
tensors with either the spatial or the Winograd backend, so tests can assert
the two agree on entire (down-scaled) networks, not just single tiles.

Weights are generated deterministically from a seed; pooling and ReLU are
applied where the network description says so; fully-connected layers are
skipped by default since they are irrelevant to the convolution engine being
studied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..winograd.fast_conv import WinogradConv2D
from .layers import ConvLayer, FullyConnectedLayer, PoolLayer
from .model import Network
from .reference import direct_conv2d, im2col_conv2d

__all__ = ["InferenceResult", "generate_weights", "run_forward", "max_pool2d", "relu"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def max_pool2d(x: np.ndarray, pool_size: int, stride: int) -> np.ndarray:
    """Max pooling over the two trailing dimensions of ``(N, C, H, W)``."""
    batch, channels, height, width = x.shape
    out_h = (height - pool_size) // stride + 1
    out_w = (width - pool_size) // stride + 1
    output = np.full((batch, channels, out_h, out_w), -np.inf, dtype=x.dtype)
    for dy in range(pool_size):
        for dx in range(pool_size):
            window = x[:, :, dy : dy + stride * out_h : stride, dx : dx + stride * out_w : stride]
            np.maximum(output, window, out=output)
    return output


def avg_pool2d(x: np.ndarray, pool_size: int, stride: int) -> np.ndarray:
    """Average pooling over the two trailing dimensions of ``(N, C, H, W)``."""
    batch, channels, height, width = x.shape
    out_h = (height - pool_size) // stride + 1
    out_w = (width - pool_size) // stride + 1
    output = np.zeros((batch, channels, out_h, out_w), dtype=x.dtype)
    for dy in range(pool_size):
        for dx in range(pool_size):
            output += x[:, :, dy : dy + stride * out_h : stride, dx : dx + stride * out_w : stride]
    return output / (pool_size * pool_size)


def generate_weights(network: Network, seed: int = 0, scale: float = 0.1) -> Dict[str, np.ndarray]:
    """Deterministic pseudo-random weights for every conv layer of a network."""
    rng = np.random.default_rng(seed)
    weights: Dict[str, np.ndarray] = {}
    for layer in network.conv_layers:
        weights[layer.name] = scale * rng.standard_normal(
            (layer.out_channels, layer.in_channels, layer.kernel_size, layer.kernel_size)
        )
    return weights


@dataclass
class InferenceResult:
    """Output of :func:`run_forward`.

    Attributes
    ----------
    output:
        The tensor produced after the last executed layer.
    layer_outputs:
        Optional per-layer activations (only kept when requested).
    backend:
        Which convolution backend produced the result.
    """

    output: np.ndarray
    backend: str
    layer_outputs: Dict[str, np.ndarray] = field(default_factory=dict)


def _convolve(
    layer: ConvLayer,
    activation: np.ndarray,
    weights: np.ndarray,
    backend: str,
    m: int,
) -> np.ndarray:
    if backend == "direct":
        return direct_conv2d(activation, weights, stride=layer.stride, padding=layer.padding)
    if backend == "im2col":
        return im2col_conv2d(activation, weights, stride=layer.stride, padding=layer.padding)
    if backend == "winograd":
        if layer.stride != 1:
            # Winograd minimal filtering assumes unit stride; fall back.
            return direct_conv2d(activation, weights, stride=layer.stride, padding=layer.padding)
        if layer.kernel_size == 1:
            # Pointwise convolutions gain nothing from Winograd.
            return direct_conv2d(activation, weights, stride=layer.stride, padding=layer.padding)
        op = WinogradConv2D(m=m, r=layer.kernel_size)
        return op(activation, weights, padding=layer.padding)
    raise ValueError(f"unknown backend {backend!r}; use 'direct', 'im2col' or 'winograd'")


def run_forward(
    network: Network,
    input_tensor: Optional[np.ndarray] = None,
    weights: Optional[Dict[str, np.ndarray]] = None,
    backend: str = "direct",
    m: int = 4,
    apply_relu: bool = True,
    keep_layer_outputs: bool = False,
    stop_after: Optional[str] = None,
    seed: int = 0,
) -> InferenceResult:
    """Run the convolutional part of ``network`` on real data.

    Parameters
    ----------
    network:
        The network description to execute.
    input_tensor:
        Input of shape matching ``network.input_spec``; random data is
        generated when omitted.
    weights:
        Per-layer kernels from :func:`generate_weights`; generated when omitted.
    backend:
        ``"direct"``, ``"im2col"`` or ``"winograd"``.
    m:
        Output tile size used by the Winograd backend.
    apply_relu:
        Apply ReLU after each convolution (as VGG does).
    keep_layer_outputs:
        Store every layer's activation in the result (memory heavy).
    stop_after:
        Stop once the layer with this name has been executed.
    seed:
        Seed for generated inputs/weights.
    """
    rng = np.random.default_rng(seed)
    if input_tensor is None:
        input_tensor = rng.standard_normal(network.input_spec.shape)
    input_tensor = np.asarray(input_tensor, dtype=np.float64)
    if weights is None:
        weights = generate_weights(network, seed=seed)

    activation = input_tensor
    layer_outputs: Dict[str, np.ndarray] = {}
    for layer in network.layers:
        if isinstance(layer, ConvLayer):
            activation = _convolve(layer, activation, weights[layer.name], backend, m)
            if apply_relu:
                activation = relu(activation)
        elif isinstance(layer, PoolLayer):
            pool = max_pool2d if layer.mode == "max" else avg_pool2d
            activation = pool(activation, layer.pool_size, layer.stride)
        elif isinstance(layer, FullyConnectedLayer):
            # The accelerator under study targets convolutional layers only.
            break
        if keep_layer_outputs:
            layer_outputs[layer.name] = activation
        if stop_after is not None and layer.name == stop_after:
            break
    return InferenceResult(output=activation, backend=backend, layer_outputs=layer_outputs)

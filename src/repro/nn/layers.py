"""Layer descriptors for CNN workload modelling.

The design-space exploration does not need trained weights — it needs the
*shape* of each layer: batch ``N``, spatial dimensions ``H x W``, input
channels ``C``, output channels (kernels) ``K`` and kernel size ``r`` — the
``NHWCK`` product that appears in Eqs. (4), (5), (7) and (9) of the paper.
These descriptors capture exactly that, plus enough metadata (padding, stride,
pooling) to compute the shapes of downstream layers and to run a functional
forward pass when numerical validation is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["ConvLayer", "PoolLayer", "FullyConnectedLayer", "InputSpec"]


@dataclass(frozen=True)
class InputSpec:
    """Shape of the tensor entering a network: ``(N, C, H, W)``."""

    batch: int = 1
    channels: int = 3
    height: int = 224
    width: int = 224

    def __post_init__(self) -> None:
        for name in ("batch", "channels", "height", "width"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape tuple."""
        return (self.batch, self.channels, self.height, self.width)


@dataclass(frozen=True)
class ConvLayer:
    """A convolutional layer described by its workload parameters.

    Attributes follow the paper's notation: input feature map ``H x W x C``,
    ``K`` kernels of ``r x r`` pixels, batch size ``N``.  ``padding`` and
    ``stride`` use the conventional meaning; VGG convolutions are
    ``r=3, padding=1, stride=1`` so output spatial dimensions equal the input.
    """

    name: str
    in_channels: int
    out_channels: int
    height: int
    width: int
    kernel_size: int = 3
    stride: int = 1
    padding: int = 1
    batch: int = 1
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.in_channels < 1 or self.out_channels < 1:
            raise ValueError("channel counts must be >= 1")
        if self.height < 1 or self.width < 1:
            raise ValueError("spatial dimensions must be >= 1")
        if self.kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")
        if self.padding < 0:
            raise ValueError("padding must be >= 0")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")

    # ------------------------------------------------------------------ #
    @property
    def output_height(self) -> int:
        """Output feature-map height."""
        return (self.height + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def output_width(self) -> int:
        """Output feature-map width."""
        return (self.width + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def output_shape(self) -> Tuple[int, int, int, int]:
        """``(N, K, H_out, W_out)``."""
        return (self.batch, self.out_channels, self.output_height, self.output_width)

    # Workload metrics --------------------------------------------------- #
    @property
    def nhwck(self) -> int:
        """The paper's ``N * H * W * C * K`` workload product.

        Uses the *output* spatial dimensions, which is what determines the
        number of output pixels that must be produced (for the VGG layers with
        ``padding=1`` the two coincide).
        """
        return (
            self.batch
            * self.output_height
            * self.output_width
            * self.in_channels
            * self.out_channels
        )

    @property
    def output_pixels(self) -> int:
        """Number of output pixels per kernel: ``N * H_out * W_out``."""
        return self.batch * self.output_height * self.output_width

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations of a direct (spatial) convolution."""
        return self.nhwck * self.kernel_size * self.kernel_size

    @property
    def flops(self) -> int:
        """Floating-point operations counting multiply and add separately."""
        return 2 * self.macs

    @property
    def weight_count(self) -> int:
        """Number of kernel weights ``K * C * r * r``."""
        return self.out_channels * self.in_channels * self.kernel_size * self.kernel_size

    def with_batch(self, batch: int) -> "ConvLayer":
        """Return a copy of this layer with a different batch size."""
        return ConvLayer(
            name=self.name,
            in_channels=self.in_channels,
            out_channels=self.out_channels,
            height=self.height,
            width=self.width,
            kernel_size=self.kernel_size,
            stride=self.stride,
            padding=self.padding,
            batch=batch,
            group=self.group,
        )


@dataclass(frozen=True)
class PoolLayer:
    """A max/average pooling layer (only shape propagation is needed)."""

    name: str
    channels: int
    height: int
    width: int
    pool_size: int = 2
    stride: int = 2
    mode: str = "max"
    batch: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("max", "avg"):
            raise ValueError("mode must be 'max' or 'avg'")
        if self.pool_size < 1 or self.stride < 1:
            raise ValueError("pool_size and stride must be >= 1")

    @property
    def output_height(self) -> int:
        """Pooled output height."""
        return (self.height - self.pool_size) // self.stride + 1

    @property
    def output_width(self) -> int:
        """Pooled output width."""
        return (self.width - self.pool_size) // self.stride + 1

    @property
    def output_shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape after pooling."""
        return (self.batch, self.channels, self.output_height, self.output_width)

    @property
    def flops(self) -> int:
        """Comparison/accumulation operations (negligible next to conv layers)."""
        return (
            self.batch
            * self.channels
            * self.output_height
            * self.output_width
            * self.pool_size
            * self.pool_size
        )


@dataclass(frozen=True)
class FullyConnectedLayer:
    """A fully-connected layer, included for complete network descriptions."""

    name: str
    in_features: int
    out_features: int
    batch: int = 1

    def __post_init__(self) -> None:
        if self.in_features < 1 or self.out_features < 1:
            raise ValueError("feature counts must be >= 1")

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one forward pass."""
        return self.batch * self.in_features * self.out_features

    @property
    def flops(self) -> int:
        """Floating-point operations (two per MAC)."""
        return 2 * self.macs

    @property
    def weight_count(self) -> int:
        """Number of weights in the layer."""
        return self.in_features * self.out_features

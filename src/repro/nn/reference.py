"""Reference (spatial) convolution implementations.

The "spatial convolution" of the paper's Eq. (1) is the ground truth every
fast algorithm is validated against, and it is also the baseline whose
arithmetic complexity (``m = 1`` in Eq. (4)) anchors the DSE plots.  Two
implementations are provided:

* :func:`direct_conv2d` — a literal, loop-free but otherwise direct
  implementation via sliding-window summation;
* :func:`im2col_conv2d` — the im2col + GEMM formulation most software
  frameworks (and several FPGA accelerators, e.g. the paper's reference [12])
  use, provided both as a second cross-check and as a performance-relevant
  software baseline.

Both accept ``(N, C, H, W)`` feature maps and ``(K, C, r, r)`` kernel banks
and return ``(N, K, H_out, W_out)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["direct_conv2d", "im2col", "im2col_conv2d", "conv_output_shape"]


def conv_output_shape(
    height: int, width: int, kernel_size: int, stride: int = 1, padding: int = 0
) -> Tuple[int, int]:
    """Output spatial dimensions of a convolution."""
    out_h = (height + 2 * padding - kernel_size) // stride + 1
    out_w = (width + 2 * padding - kernel_size) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("kernel does not fit inside the padded input")
    return out_h, out_w


def _validate_inputs(feature_map: np.ndarray, kernels: np.ndarray) -> None:
    if feature_map.ndim != 4:
        raise ValueError(f"feature map must be (N, C, H, W), got {feature_map.shape}")
    if kernels.ndim != 4:
        raise ValueError(f"kernels must be (K, C, r, r), got {kernels.shape}")
    if kernels.shape[2] != kernels.shape[3]:
        raise ValueError("only square kernels are supported")
    if feature_map.shape[1] != kernels.shape[1]:
        raise ValueError(
            f"channel mismatch: feature map has {feature_map.shape[1]}, "
            f"kernels have {kernels.shape[1]}"
        )


def direct_conv2d(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct spatial convolution (correlation), the paper's Eq. (1).

    Parameters
    ----------
    feature_map:
        Input of shape ``(N, C, H, W)``.
    kernels:
        Kernel bank of shape ``(K, C, r, r)``.
    stride, padding:
        Standard convolution hyper-parameters.
    """
    feature_map = np.asarray(feature_map, dtype=np.float64)
    kernels = np.asarray(kernels, dtype=np.float64)
    _validate_inputs(feature_map, kernels)
    batch, channels, height, width = feature_map.shape
    num_kernels, _, r, _ = kernels.shape
    out_h, out_w = conv_output_shape(height, width, r, stride, padding)

    if padding:
        feature_map = np.pad(
            feature_map, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )

    output = np.zeros((batch, num_kernels, out_h, out_w), dtype=np.float64)
    for dy in range(r):
        for dx in range(r):
            # Slice the input so that element (y, x) aligns with kernel tap (dy, dx).
            window = feature_map[
                :, :, dy : dy + stride * out_h : stride, dx : dx + stride * out_w : stride
            ]
            output += np.einsum("nchw,kc->nkhw", window, kernels[:, :, dy, dx], optimize=True)
    return output


def im2col(
    feature_map: np.ndarray, kernel_size: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unfold an ``(N, C, H, W)`` tensor into im2col patches.

    Returns an array of shape ``(N, C * r * r, H_out * W_out)`` laid out so a
    single matrix multiplication with the reshaped kernel bank performs the
    convolution.
    """
    feature_map = np.asarray(feature_map, dtype=np.float64)
    if feature_map.ndim != 4:
        raise ValueError(f"feature map must be (N, C, H, W), got {feature_map.shape}")
    batch, channels, height, width = feature_map.shape
    out_h, out_w = conv_output_shape(height, width, kernel_size, stride, padding)
    if padding:
        feature_map = np.pad(
            feature_map, ((0, 0), (0, 0), (padding, padding), (padding, padding))
        )
    columns = np.empty(
        (batch, channels, kernel_size, kernel_size, out_h, out_w), dtype=np.float64
    )
    for dy in range(kernel_size):
        for dx in range(kernel_size):
            columns[:, :, dy, dx, :, :] = feature_map[
                :, :, dy : dy + stride * out_h : stride, dx : dx + stride * out_w : stride
            ]
    return columns.reshape(batch, channels * kernel_size * kernel_size, out_h * out_w)


def im2col_conv2d(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Convolution via im2col + GEMM (used as a second reference path)."""
    feature_map = np.asarray(feature_map, dtype=np.float64)
    kernels = np.asarray(kernels, dtype=np.float64)
    _validate_inputs(feature_map, kernels)
    batch, _, height, width = feature_map.shape
    num_kernels, channels, r, _ = kernels.shape
    out_h, out_w = conv_output_shape(height, width, r, stride, padding)
    columns = im2col(feature_map, r, stride, padding)
    kernel_matrix = kernels.reshape(num_kernels, channels * r * r)
    output = kernel_matrix @ columns  # (N, K, H_out * W_out) via broadcasting
    return output.reshape(batch, num_kernels, out_h, out_w)

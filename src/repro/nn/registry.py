"""Named network registry for campaign-scale exploration.

Campaigns describe their workloads by name (``"vgg16-d"``, ``"alexnet"``,
``"resnet18"``) so that sweep specifications stay declarative and picklable;
this registry maps those names to the builder functions.  Builders are
invoked per lookup, so every caller gets a fresh, independently mutable
:class:`~repro.nn.model.Network`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from .alexnet import alexnet
from .model import Network
from .resnet import resnet18, resnet34
from .vgg import vgg16_d

__all__ = [
    "NETWORK_BUILDERS",
    "get_network",
    "known_networks",
    "register_network",
    "resolve_network",
]

NetworkBuilder = Callable[[], Network]

#: Known workload builders, keyed by canonical name (plus common aliases).
NETWORK_BUILDERS: Dict[str, NetworkBuilder] = {
    "vgg16-d": vgg16_d,
    "vgg16": vgg16_d,
    "alexnet": alexnet,
    "resnet18": resnet18,
    "resnet34": resnet34,
}


def register_network(name: str, builder: NetworkBuilder, overwrite: bool = False) -> None:
    """Register a workload builder under ``name``.

    Collisions raise rather than silently shadowing an existing workload
    (which would change the meaning of every saved experiment spec naming
    it); pass ``overwrite=True`` to replace an entry deliberately.
    """
    if not isinstance(name, str) or not name:
        raise TypeError("name must be a non-empty string")
    if not callable(builder):
        raise TypeError("builder must be callable")
    if not overwrite and name in NETWORK_BUILDERS:
        raise ValueError(
            f"network {name!r} is already registered; pass overwrite=True to replace it"
        )
    NETWORK_BUILDERS[name] = builder


def known_networks() -> List[str]:
    """Sorted names the registry can build."""
    return sorted(NETWORK_BUILDERS)


def get_network(name: str) -> Network:
    """Build a fresh network by registry name."""
    try:
        builder = NETWORK_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; known networks: {known_networks()}"
        ) from None
    return builder()


def resolve_network(network: Union[str, Network]) -> Network:
    """Pass through a :class:`Network`, or build one from a registry name."""
    if isinstance(network, Network):
        return network
    if isinstance(network, str):
        return get_network(network)
    raise TypeError(f"expected a Network or registry name, got {type(network).__name__}")

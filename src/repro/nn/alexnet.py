"""AlexNet (Krizhevsky et al., 2012) workload description.

Included as an additional exploration workload: unlike VGG, AlexNet mixes
kernel sizes (11x11, 5x5, 3x3), which makes it a useful stress case for the
design-space exploration — Winograd ``F(m x m, 3 x 3)`` engines only apply to
its later layers, and the DSE has to report which layers fall back to spatial
convolution.
"""

from __future__ import annotations

from .layers import ConvLayer, FullyConnectedLayer, InputSpec, PoolLayer
from .model import Network

__all__ = ["alexnet"]


def alexnet(batch: int = 1) -> Network:
    """Build the single-tower AlexNet layer stack."""
    spec = InputSpec(batch=batch, channels=3, height=227, width=227)
    network = Network(name="alexnet", input_spec=spec)
    network.add(
        ConvLayer(
            name="conv1",
            in_channels=3,
            out_channels=96,
            height=227,
            width=227,
            kernel_size=11,
            stride=4,
            padding=0,
            batch=batch,
            group="Conv1",
        )
    )
    network.add(PoolLayer("pool1", channels=96, height=55, width=55, pool_size=3, stride=2, batch=batch))
    network.add(
        ConvLayer(
            name="conv2",
            in_channels=96,
            out_channels=256,
            height=27,
            width=27,
            kernel_size=5,
            stride=1,
            padding=2,
            batch=batch,
            group="Conv2",
        )
    )
    network.add(PoolLayer("pool2", channels=256, height=27, width=27, pool_size=3, stride=2, batch=batch))
    network.add(
        ConvLayer(
            name="conv3",
            in_channels=256,
            out_channels=384,
            height=13,
            width=13,
            kernel_size=3,
            stride=1,
            padding=1,
            batch=batch,
            group="Conv3",
        )
    )
    network.add(
        ConvLayer(
            name="conv4",
            in_channels=384,
            out_channels=384,
            height=13,
            width=13,
            kernel_size=3,
            stride=1,
            padding=1,
            batch=batch,
            group="Conv4",
        )
    )
    network.add(
        ConvLayer(
            name="conv5",
            in_channels=384,
            out_channels=256,
            height=13,
            width=13,
            kernel_size=3,
            stride=1,
            padding=1,
            batch=batch,
            group="Conv5",
        )
    )
    network.add(PoolLayer("pool5", channels=256, height=13, width=13, pool_size=3, stride=2, batch=batch))
    network.add(FullyConnectedLayer("fc6", 256 * 6 * 6, 4096, batch=batch))
    network.add(FullyConnectedLayer("fc7", 4096, 4096, batch=batch))
    network.add(FullyConnectedLayer("fc8", 4096, 1000, batch=batch))
    return network

"""Network container: an ordered collection of layer descriptors.

A :class:`Network` is what the design-space exploration, the throughput model
and the benchmark harness consume.  It offers convenient views of the
convolutional workload (per layer, per named group, or total) that map
directly onto the quantities in the paper's equations and tables:  Table II
reports latency per VGG16 "group layer" (Conv1..Conv5) which is exactly
:meth:`Network.conv_groups`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .layers import ConvLayer, FullyConnectedLayer, InputSpec, PoolLayer

Layer = Union[ConvLayer, PoolLayer, FullyConnectedLayer]

__all__ = ["Network", "Layer"]


@dataclass
class Network:
    """An ordered CNN description.

    Parameters
    ----------
    name:
        Network identifier (e.g. ``"vgg16-d"``).
    input_spec:
        Shape of the input tensor.
    layers:
        Ordered layer descriptors.
    """

    name: str
    input_spec: InputSpec
    layers: List[Layer] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Collection behaviour
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def add(self, layer: Layer) -> "Network":
        """Append a layer and return ``self`` for chaining."""
        self.layers.append(layer)
        return self

    def layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no layer named {name!r} in network {self.name!r}")

    # ------------------------------------------------------------------ #
    # Convolutional views
    # ------------------------------------------------------------------ #
    @property
    def conv_layers(self) -> List[ConvLayer]:
        """All convolutional layers in network order."""
        return [layer for layer in self.layers if isinstance(layer, ConvLayer)]

    def conv_groups(self) -> Dict[str, List[ConvLayer]]:
        """Convolutional layers grouped by their ``group`` attribute.

        Layers without a group are collected under their own name so nothing
        is silently dropped.  Ordering follows first appearance.
        """
        groups: Dict[str, List[ConvLayer]] = {}
        for layer in self.conv_layers:
            key = layer.group or layer.name
            groups.setdefault(key, []).append(layer)
        return groups

    # ------------------------------------------------------------------ #
    # Workload metrics
    # ------------------------------------------------------------------ #
    @property
    def total_conv_macs(self) -> int:
        """Total multiply-accumulates of all convolutional layers."""
        return sum(layer.macs for layer in self.conv_layers)

    @property
    def total_conv_flops(self) -> int:
        """Total FLOPs (2 x MACs) of all convolutional layers."""
        return sum(layer.flops for layer in self.conv_layers)

    @property
    def total_conv_nhwck(self) -> int:
        """Sum of the ``NHWCK`` products of all convolutional layers."""
        return sum(layer.nhwck for layer in self.conv_layers)

    @property
    def total_weights(self) -> int:
        """Total weight count (conv + fully connected)."""
        total = 0
        for layer in self.layers:
            if isinstance(layer, (ConvLayer, FullyConnectedLayer)):
                total += layer.weight_count
        return total

    def kernel_sizes(self) -> Tuple[int, ...]:
        """Distinct convolution kernel sizes present in the network."""
        return tuple(sorted({layer.kernel_size for layer in self.conv_layers}))

    def uniform_kernel_size(self) -> Optional[int]:
        """The single kernel size if all conv layers share one, else ``None``.

        The paper chooses VGG16-D exactly because all layers use 3x3 kernels,
        so one engine configuration serves the whole network.
        """
        sizes = self.kernel_sizes()
        return sizes[0] if len(sizes) == 1 else None

    def with_batch(self, batch: int) -> "Network":
        """Return a copy of the network with every conv layer re-batched."""
        rebatched: List[Layer] = []
        for layer in self.layers:
            if isinstance(layer, ConvLayer):
                rebatched.append(layer.with_batch(batch))
            else:
                rebatched.append(layer)
        spec = InputSpec(
            batch=batch,
            channels=self.input_spec.channels,
            height=self.input_spec.height,
            width=self.input_spec.width,
        )
        return Network(name=self.name, input_spec=spec, layers=rebatched)

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Multi-line human-readable summary of the network."""
        lines = [f"Network {self.name!r} — input {self.input_spec.shape}"]
        for layer in self.layers:
            if isinstance(layer, ConvLayer):
                lines.append(
                    f"  conv {layer.name:12s} {layer.in_channels:4d}->{layer.out_channels:<4d} "
                    f"{layer.height}x{layer.width} k={layer.kernel_size} "
                    f"macs={layer.macs / 1e6:9.1f}M"
                )
            elif isinstance(layer, PoolLayer):
                lines.append(
                    f"  pool {layer.name:12s} {layer.channels:4d}       "
                    f"{layer.height}x{layer.width}->{layer.output_height}x{layer.output_width}"
                )
            else:
                lines.append(
                    f"  fc   {layer.name:12s} {layer.in_features}->{layer.out_features} "
                    f"macs={layer.macs / 1e6:9.1f}M"
                )
        lines.append(
            f"  total conv MACs: {self.total_conv_macs / 1e9:.2f} G, "
            f"FLOPs: {self.total_conv_flops / 1e9:.2f} G, weights: {self.total_weights / 1e6:.1f} M"
        )
        return "\n".join(lines)

"""CNN workload substrate: layer descriptors, reference networks and numerics.

Provides the layer/network descriptions (VGG, AlexNet, ResNet) whose shapes
drive the design-space exploration, together with NumPy reference convolutions
and a functional forward-pass runner used to validate the Winograd datapath.
"""

from .alexnet import alexnet
from .inference import InferenceResult, generate_weights, max_pool2d, relu, run_forward
from .layers import ConvLayer, FullyConnectedLayer, InputSpec, PoolLayer
from .model import Layer, Network
from .reference import conv_output_shape, direct_conv2d, im2col, im2col_conv2d
from .registry import (
    NETWORK_BUILDERS,
    get_network,
    known_networks,
    register_network,
    resolve_network,
)
from .resnet import basic_block_layers, resnet18, resnet34
from .vgg import VGG_CONFIGS, vgg, vgg16_d, vgg16_group_workloads
from .workloads import (
    LayerWorkload,
    group_workloads,
    layer_workload,
    network_workloads,
    total_spatial_operations,
    winograd_eligible_layers,
)

__all__ = [
    "ConvLayer",
    "PoolLayer",
    "FullyConnectedLayer",
    "InputSpec",
    "Network",
    "Layer",
    "vgg",
    "vgg16_d",
    "vgg16_group_workloads",
    "VGG_CONFIGS",
    "alexnet",
    "resnet18",
    "resnet34",
    "basic_block_layers",
    "NETWORK_BUILDERS",
    "get_network",
    "known_networks",
    "register_network",
    "resolve_network",
    "direct_conv2d",
    "im2col",
    "im2col_conv2d",
    "conv_output_shape",
    "run_forward",
    "generate_weights",
    "InferenceResult",
    "relu",
    "max_pool2d",
    "LayerWorkload",
    "layer_workload",
    "network_workloads",
    "group_workloads",
    "total_spatial_operations",
    "winograd_eligible_layers",
]

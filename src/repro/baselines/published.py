"""Published reference values from the paper (Tables I and II) and Fig. 2/6.

These constants are the ground truth the benchmark harness compares the
reproduction's models against; EXPERIMENTS.md is generated from exactly this
data.  Nothing in the library's models *reads* these values (they are outputs
to be reproduced, not inputs), with one deliberate exception: the Qiu et
al. [12] column of Table II reports measurements from their paper that cannot
be derived from the analytical model, so the [12] baseline exposes them
directly.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "TABLE1_PUBLISHED",
    "TABLE2_PUBLISHED",
    "FIG2_PUBLISHED_MFLOPS",
    "FIG3_PUBLISHED",
    "FIG6_PUBLISHED_GOPS",
    "VIRTEX7_AVAILABLE",
]

#: Table I — resource utilisation for 19 PEs, F(4x4, 3x3).
TABLE1_PUBLISHED: Dict[str, Dict[str, int]] = {
    "reference_design": {  # "Design based on [3]"
        "registers": 97052,
        "luts": 232256,
        "dsp_slices": 2736,
        "multipliers": 684,
    },
    "proposed_design": {
        "registers": 76500,
        "luts": 107839,
        "dsp_slices": 2736,
        "multipliers": 684,
    },
}

#: Table I — "Available resources" row (Xilinx Virtex-7).
VIRTEX7_AVAILABLE: Dict[str, int] = {
    "registers": 607200,
    "luts": 303600,
    "dsp_slices": 2800,
    "multipliers": 700,
}

#: Table II — performance comparison for VGG16-D.  Latencies in ms, power in
#: watts, throughput in GOPS/s, efficiency in GOPS/s/W and GOPS/s/multiplier.
TABLE2_PUBLISHED: Dict[str, Dict[str, float]] = {
    "qiu_fpga16": {  # reference [12]
        "multipliers": 780,
        "pes": float("nan"),
        "precision_bits": 16,
        "frequency_mhz": 150,
        "conv1_ms": 31.29,
        "conv2_ms": 23.58,
        "conv3_ms": 39.29,
        "conv4_ms": 36.30,
        "conv5_ms": 32.95,
        "overall_latency_ms": 163.4,
        "throughput_gops": 187.8,
        "multiplier_efficiency": 0.24,
        "power_w": 9.63,
        "power_efficiency": 19.50,
    },
    "podili_asap17": {  # reference [3], 256 multipliers
        "m": 2,
        "multipliers": 256,
        "pes": 16,
        "precision_bits": 32,
        "frequency_mhz": 200,
        "conv1_ms": 16.81,
        "conv2_ms": 24.08,
        "conv3_ms": 40.14,
        "conv4_ms": 40.14,
        "conv5_ms": 12.04,
        "overall_latency_ms": 133.22,
        "throughput_gops": 230.4,
        "multiplier_efficiency": 0.90,
        "power_w": 8.04,
        "power_efficiency": 28.66,
    },
    "podili_normalized": {  # reference [3] scaled to 688 multipliers ([3]a)
        "m": 2,
        "multipliers": 688,
        "pes": 43,
        "precision_bits": 32,
        "frequency_mhz": 200,
        "conv1_ms": 6.25,
        "conv2_ms": 8.96,
        "conv3_ms": 14.94,
        "conv4_ms": 14.94,
        "conv5_ms": 4.48,
        "overall_latency_ms": 49.57,
        "throughput_gops": 619.2,
        "multiplier_efficiency": 0.90,
        "power_w": 21.61,
        "power_efficiency": 28.66,
    },
    "proposed_m2": {
        "m": 2,
        "multipliers": 688,
        "pes": 43,
        "precision_bits": 32,
        "frequency_mhz": 200,
        "conv1_ms": 6.25,
        "conv2_ms": 8.96,
        "conv3_ms": 14.94,
        "conv4_ms": 14.94,
        "conv5_ms": 4.48,
        "overall_latency_ms": 49.57,
        "throughput_gops": 619.2,
        "multiplier_efficiency": 0.90,
        "power_w": 13.03,
        "power_efficiency": 41.34,
    },
    "proposed_m3": {
        "m": 3,
        "multipliers": 700,
        "pes": 28,
        "precision_bits": 32,
        "frequency_mhz": 200,
        "conv1_ms": 4.27,
        "conv2_ms": 6.12,
        "conv3_ms": 10.19,
        "conv4_ms": 10.19,
        "conv5_ms": 3.06,
        "overall_latency_ms": 33.83,
        "throughput_gops": 907.2,
        "multiplier_efficiency": 1.29,
        "power_w": 23.96,
        "power_efficiency": 37.87,
    },
    "proposed_m4": {
        "m": 4,
        "multipliers": 684,
        "pes": 19,
        "precision_bits": 32,
        "frequency_mhz": 200,
        "conv1_ms": 3.54,
        "conv2_ms": 5.07,
        "conv3_ms": 8.45,
        "conv4_ms": 8.45,
        "conv5_ms": 2.54,
        "overall_latency_ms": 28.05,
        "throughput_gops": 1094.3,
        "multiplier_efficiency": 1.60,
        "power_w": 36.32,
        "power_efficiency": 30.13,
    },
}

#: Fig. 2 — net transform complexity for VGG16-D in Mega FLOPs, per m.
FIG2_PUBLISHED_MFLOPS: Dict[int, float] = {
    2: 156.0,
    3: 196.0,
    4: 207.0,
    5: 272.0,
    6: 304.0,
    7: 408.0,
}

#: Fig. 3 — percentage decrease in multiplication complexity (vs. the previous
#: m) and percentage increase in transform complexity, per m.
FIG3_PUBLISHED: Dict[int, Dict[str, float]] = {
    2: {"mult_decrease_pct": 56.25, "transform_increase_pct": 0.00},
    3: {"mult_decrease_pct": 30.56, "transform_increase_pct": 25.59},
    4: {"mult_decrease_pct": 19.00, "transform_increase_pct": 5.58},
    5: {"mult_decrease_pct": 12.89, "transform_increase_pct": 31.31},
    6: {"mult_decrease_pct": 9.30, "transform_increase_pct": 11.68},
    7: {"mult_decrease_pct": 7.02, "transform_increase_pct": 34.27},
}

#: Fig. 6 — throughput (GOPS/s) at 200 MHz per convolution method and
#: multiplier budget.  Key: (method, multipliers); method "spatial" is m = 1.
FIG6_PUBLISHED_GOPS: Dict[tuple, float] = {
    ("spatial", 256): 100.80,
    ("spatial", 512): 201.60,
    ("spatial", 1024): 403.20,
    (2, 256): 230.40,
    (2, 512): 460.80,
    (2, 1024): 921.59,
    (3, 256): 331.78,
    (3, 512): 663.50,
    (3, 1024): 1327.11,
    (4, 256): 409.60,
    (4, 512): 819.19,
    (4, 1024): 1638.38,
    (5, 256): 470.21,
    (5, 512): 940.41,
    (5, 1024): 1880.82,
    (6, 256): 518.40,
    (6, 512): 1036.80,
    (6, 1024): 2073.60,
    (7, 256): 557.56,
    (7, 512): 1115.11,
    (7, 1024): 2230.23,
}

"""Model of the Qiu et al. [12] embedded-FPGA accelerator (FPGA 2016).

[12] is a 16-bit fixed-point, im2col/line-buffer style accelerator on a Zynq
XC7Z045 running at 150 MHz with 780 multipliers.  The paper uses it as an
"older implementation" reference row in Table II; its figures are measured
numbers from the original publication rather than outputs of the analytical
model, so this module exposes them directly (clearly marked as published
values) and additionally provides a parametric spatial-convolution model of
the same machine so it can participate in sweeps on other workloads.
"""

from __future__ import annotations

from typing import Optional

from ..core.design_point import DesignPoint
from ..core.throughput import LatencyReport
from ..hw.calibration import DEFAULT_CALIBRATION, Calibration
from ..hw.device import FpgaDevice, zynq_7045
from ..hw.resources import ResourceEstimate
from ..nn.model import Network
from .published import TABLE2_PUBLISHED
from .spatial import spatial_engine_design

__all__ = ["qiu_published_design", "qiu_parametric_design"]


def qiu_published_design(network: Network) -> DesignPoint:
    """The [12] column of Table II, reproduced from its published figures.

    The returned :class:`DesignPoint` carries the published latencies,
    throughput and power; resource fields hold only the multiplier count.
    Only meaningful for VGG16-D (the workload [12] reports).
    """
    published = TABLE2_PUBLISHED["qiu_fpga16"]
    group_latency = {
        f"Conv{i}": published[f"conv{i}_ms"] for i in range(1, 6)
    }
    latency = LatencyReport(
        m=1,
        r=3,
        parallel_pes=float("nan"),
        frequency_mhz=published["frequency_mhz"],
        pipeline_depth=0,
        group_latency_ms=group_latency,
        total_latency_ms=published["overall_latency_ms"],
        spatial_ops=int(network.total_conv_flops),
    )
    multipliers = int(published["multipliers"])
    return DesignPoint(
        name="qiu-fpga16",
        m=1,
        r=3,
        parallel_pes=0,
        multipliers=multipliers,
        frequency_mhz=published["frequency_mhz"],
        shared_data_transform=False,
        device_name=zynq_7045().name,
        precision="fixed16",
        latency=latency,
        throughput_gops=published["throughput_gops"],
        multiplier_efficiency=published["multiplier_efficiency"],
        resources=ResourceEstimate(multipliers=multipliers),
        power_watts=published["power_w"],
        power_efficiency=published["power_efficiency"],
        spatial_multiplications=float(network.total_conv_macs),
        winograd_multiplications=float(network.total_conv_macs),
        implementation_transform_ops=0.0,
        workload_name=network.name,
    )


def qiu_parametric_design(
    network: Network,
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> DesignPoint:
    """A parametric spatial-convolution machine with [12]'s budget and clock.

    780 multipliers at 150 MHz with 16-bit arithmetic, evaluated through the
    same analytical pipeline as every other design so that [12]-class
    machines can be swept on arbitrary workloads.
    """
    device = device or zynq_7045()
    return spatial_engine_design(
        network,
        multipliers=int(TABLE2_PUBLISHED["qiu_fpga16"]["multipliers"]),
        frequency_mhz=TABLE2_PUBLISHED["qiu_fpga16"]["frequency_mhz"],
        device=device,
        calibration=calibration,
        name="qiu-parametric",
    )

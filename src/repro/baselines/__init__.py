"""Baseline accelerator models the paper compares against.

* Podili et al. [3] (ASAP 2017) — the state-of-the-art Winograd engine with a
  per-PE data transform, in original and multiplier-normalised form.
* Qiu et al. [12] (FPGA 2016) — the embedded 16-bit accelerator, as published
  reference values plus a parametric spatial model.
* A plain spatial-convolution engine — the ``m = 1`` anchor of the DSE plots.
* The paper's own published Table/Figure values, for EXPERIMENTS.md.
"""

from .podili import podili_design, podili_normalized_design, reference_style_design
from .published import (
    FIG2_PUBLISHED_MFLOPS,
    FIG3_PUBLISHED,
    FIG6_PUBLISHED_GOPS,
    TABLE1_PUBLISHED,
    TABLE2_PUBLISHED,
    VIRTEX7_AVAILABLE,
)
from .qiu import qiu_parametric_design, qiu_published_design
from .spatial import spatial_engine_design

__all__ = [
    "podili_design",
    "podili_normalized_design",
    "reference_style_design",
    "qiu_published_design",
    "qiu_parametric_design",
    "spatial_engine_design",
    "TABLE1_PUBLISHED",
    "TABLE2_PUBLISHED",
    "FIG2_PUBLISHED_MFLOPS",
    "FIG3_PUBLISHED",
    "FIG6_PUBLISHED_GOPS",
    "VIRTEX7_AVAILABLE",
]

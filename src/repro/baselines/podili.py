"""Analytical model of the Podili et al. [3] Winograd engine (ASAP 2017).

The paper's main comparator: a pipelined ``F(2x2, 3x3)`` engine in which
every PE contains its own data-transform stage.  Its performance obeys the
same Eqs. (8)-(10) as the proposed design (the paper itself computes the [3]
and [3]-normalised columns of Table II that way), so this module evaluates it
with the shared-data-transform flag turned *off* and ``m`` fixed to 2, plus a
"normalised" variant scaled to the proposed design's multiplier count.
"""

from __future__ import annotations

from typing import Optional

from ..core.design_point import DesignPoint, evaluate_design
from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, stratix_v_gt, virtex7_485t
from ..nn.model import Network

__all__ = ["podili_design", "podili_normalized_design", "reference_style_design"]


def podili_design(
    network: Network,
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> DesignPoint:
    """The original [3] configuration: F(2x2, 3x3), 16 PEs, 256 multipliers."""
    device = device or stratix_v_gt()
    return evaluate_design(
        network,
        m=2,
        r=3,
        parallel_pes=16,
        frequency_mhz=frequency_mhz,
        shared_data_transform=False,
        device=device,
        calibration=calibration,
        include_pipeline_depth=False,
        name="podili-asap17",
    )


def podili_normalized_design(
    network: Network,
    multipliers: int = 688,
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> DesignPoint:
    """The [3]a column of Table II: the [3] architecture scaled to ``multipliers``.

    The paper normalises [3] to the multiplier count of its own m=2 design
    (688 multipliers, 43 PEs) to separate the architectural contribution from
    the larger resource budget.
    """
    device = device or virtex7_485t()
    parallel_pes = multipliers // 16  # 16 multipliers per F(2x2, 3x3) PE
    return evaluate_design(
        network,
        m=2,
        r=3,
        parallel_pes=parallel_pes,
        frequency_mhz=frequency_mhz,
        shared_data_transform=False,
        device=device,
        calibration=calibration,
        include_pipeline_depth=False,
        name="podili-normalized",
    )


def reference_style_design(
    network: Network,
    m: int,
    parallel_pes: int,
    r: int = 3,
    device: Optional[FpgaDevice] = None,
    frequency_mhz: float = 200.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> DesignPoint:
    """A [3]-style (per-PE data transform) engine at arbitrary ``m`` and ``P``.

    Used by Table I ("Design based on [3]") and by the shared-transform
    ablation: same algorithm and PE count as the proposed design but without
    the hoisted data-transform stage.
    """
    device = device or virtex7_485t()
    return evaluate_design(
        network,
        m=m,
        r=r,
        parallel_pes=parallel_pes,
        frequency_mhz=frequency_mhz,
        shared_data_transform=False,
        device=device,
        calibration=calibration,
        include_pipeline_depth=False,
        name=f"reference-style-m{m}-P{parallel_pes}",
    )

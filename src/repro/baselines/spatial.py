"""Spatial (direct) convolution engine baseline.

The "Spatial Conv" series of Figs. 1 and 6: an engine made of plain
multiply-accumulate PEs, each computing one output pixel per cycle from
``r x r`` multipliers.  In this library's terms it is simply the degenerate
minimal algorithm ``F(1 x 1, r x r)`` — the transforms collapse to (near)
identities and the element-wise stage is the ``r^2``-multiplier dot product —
so it is evaluated through the same design-point pipeline as every Winograd
configuration, which keeps all comparisons internally consistent.
"""

from __future__ import annotations

from typing import Optional

from ..core.design_point import DesignPoint, evaluate_design
from ..hw.calibration import Calibration, DEFAULT_CALIBRATION
from ..hw.device import FpgaDevice, virtex7_485t
from ..nn.model import Network

__all__ = ["spatial_engine_design"]


def spatial_engine_design(
    network: Network,
    multipliers: int,
    frequency_mhz: float = 200.0,
    r: int = 3,
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    name: str = "spatial",
) -> DesignPoint:
    """Evaluate a spatial-convolution engine with ``multipliers`` MAC units.

    Each PE consumes ``r^2`` multipliers and produces one output pixel per
    cycle, so ``P = floor(mT / r^2)`` — Eq. (8) with ``m = 1``.
    """
    device = device or virtex7_485t()
    return evaluate_design(
        network,
        m=1,
        r=r,
        multiplier_budget=multipliers,
        frequency_mhz=frequency_mhz,
        shared_data_transform=True,
        device=device,
        calibration=calibration,
        include_pipeline_depth=False,
        name=name,
    )

"""Calibration constants for the analytical resource and power models.

The paper's absolute LUT / register / power figures come from Vivado synthesis
of a hand-written RTL design — something a pure-Python reproduction cannot
regenerate from first principles.  What it *can* do is drive an analytical
model with the same operator counts the RTL implements and calibrate a small
number of per-operator coefficients so that the model lands on the published
figures for the configurations the paper reports, then use the same
coefficients everywhere else in the design space.  This module is the single
home of those coefficients; every value is documented with the evidence used
to pick it.

Calibration evidence (all from the paper):

* Table I: 19-PE ``F(4x4, 3x3)``: the reference-[3]-style design needs
  ~12,224 LUTs per PE, the proposed design ~5,312 LUTs per PE; 2,736 DSP
  slices for 684 multipliers ⇒ **4 DSP slices per fp32 multiplier**.
* Table I registers: 97,052 (reference) vs. 76,500 (proposed) for 19 PEs.
* Table II power: 8.04 W ([3], 256 mult), 13.03 W (ours m=2, 688 mult),
  21.61 W ([3]-style, 688 mult), 23.96 W (ours m=3, 700 mult), 36.32 W
  (ours m=4, 684 mult).

The fitted per-op LUT costs are therefore *effective* costs — they absorb
whatever sharing, fixed-point sub-paths and control logic the original RTL
contains — and are deliberately kept much lower than a stand-alone IEEE-754
adder would need.  The relative conclusions (who saves how much) depend only
on the op-count ratios, not on the absolute coefficient values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ResourceCalibration", "PowerCalibration", "Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class ResourceCalibration:
    """Effective per-operator FPGA resource costs (single-precision datapath).

    All LUT/register figures are per operator instance; the datapath is fully
    spatial (one operator per op in the dataflow graph), matching the paper's
    "one tile per clock cycle per PE" throughput.
    """

    #: LUTs per floating-point adder/subtractor in the transform stages.
    luts_per_transform_add: float = 30.0
    #: LUTs per non-trivial constant multiplier in the transform stages.
    luts_per_constant_mult: float = 60.0
    #: LUTs per power-of-two scaling (exponent adjustment — essentially wiring).
    luts_per_shift: float = 2.0
    #: LUT overhead of one general (data x data) fp32 multiplier, beyond its DSPs.
    luts_per_multiplier: float = 28.0
    #: LUTs per accumulator add (channel-wise accumulation at the PE output).
    luts_per_accumulator: float = 36.0
    #: Fixed per-PE control/interconnect overhead in LUTs.
    luts_pe_overhead: float = 180.0
    #: Fixed engine-level overhead (control FSM, AXI interfaces, buffers logic).
    luts_engine_overhead: float = 2500.0

    #: DSP slices per general fp32 multiplier (Table I: 2736 / 684 = 4).
    dsps_per_multiplier: int = 4
    #: DSP slices per transform constant multiplier (implemented in logic).
    dsps_per_constant_mult: int = 0

    #: Registers per pipelined operator (effective, after register sharing).
    registers_per_word: float = 14.0
    #: Pipeline register stages inserted per transform stage.
    register_stages_per_transform: int = 1
    #: Fixed per-PE register overhead.
    registers_pe_overhead: float = 800.0
    #: Fixed engine-level register overhead.
    registers_engine_overhead: float = 4000.0

    #: Data width in bits of the single-precision datapath.
    data_width_bits: int = 32


@dataclass(frozen=True)
class PowerCalibration:
    """Per-resource dynamic power coefficients plus static power.

    Fitted so the model reproduces the ordering and rough magnitude of the
    Table II power column at 200 MHz; the coefficients scale linearly with
    clock frequency relative to the 200 MHz calibration point.
    """

    #: Static (leakage + clocking infrastructure) power in watts.
    static_watts: float = 1.0
    #: Dynamic watts per kLUT of active logic at the calibration frequency.
    watts_per_kilo_lut: float = 0.21
    #: Dynamic watts per DSP slice at the calibration frequency.
    watts_per_dsp: float = 0.0015
    #: Dynamic watts per kilo-register at the calibration frequency.
    watts_per_kilo_register: float = 0.01
    #: Dynamic watts per megabit of active block RAM.
    watts_per_megabit_bram: float = 0.1
    #: Frequency (MHz) at which the dynamic coefficients were calibrated.
    calibration_frequency_mhz: float = 200.0
    #: Activity factor applied to dynamic power (toggling probability).
    activity_factor: float = 1.0


@dataclass(frozen=True)
class Calibration:
    """Bundle of resource and power calibrations used across the models."""

    resources: ResourceCalibration = field(default_factory=ResourceCalibration)
    power: PowerCalibration = field(default_factory=PowerCalibration)


#: The calibration used by default throughout the library.
DEFAULT_CALIBRATION = Calibration()

"""FPGA device library.

The paper synthesises its designs on a Xilinx Virtex-7 device whose available
resources are listed in Table I (303,600 LUTs / 607,200 registers / 2,800 DSP
slices — the XC7VX485T), compares against Podili et al. [3] on an Altera
Stratix V GT and against Qiu et al. [12] on a Xilinx Zynq XC7Z045.  This
module captures those devices (plus a couple of convenient extras) as plain
dataclasses the rest of the models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "FpgaDevice",
    "DEVICES",
    "get_device",
    "known_devices",
    "register_device",
    "resolve_device",
    "virtex7_485t",
    "virtex7_690t",
    "zynq_7045",
    "stratix_v_gt",
]


@dataclass(frozen=True)
class FpgaDevice:
    """Available resources of one FPGA device.

    Attributes
    ----------
    name:
        Marketing / part name.
    luts:
        Number of 6-input look-up tables (Altera ALMs are converted to an
        equivalent LUT count for comparability).
    registers:
        Number of flip-flops.
    dsp_slices:
        Number of DSP slices (DSP48E1 for Xilinx 7-series; variable-precision
        DSP blocks for Stratix V).
    bram_kbits:
        Total block-RAM capacity in kilobits.
    max_frequency_mhz:
        A practical upper bound on achievable clock frequency for heavily
        pipelined arithmetic datapaths on this device.
    dram_bandwidth_gbps:
        Peak external memory bandwidth in gigabytes per second (used by the
        roofline and buffer models).
    """

    name: str
    luts: int
    registers: int
    dsp_slices: int
    bram_kbits: int
    max_frequency_mhz: float = 400.0
    dram_bandwidth_gbps: float = 12.8

    def __post_init__(self) -> None:
        if min(self.luts, self.registers, self.dsp_slices, self.bram_kbits) < 0:
            raise ValueError("device resources must be non-negative")
        if self.max_frequency_mhz <= 0 or self.dram_bandwidth_gbps <= 0:
            raise ValueError("frequency and bandwidth must be positive")

    @property
    def bram_bytes(self) -> int:
        """Block-RAM capacity in bytes."""
        return self.bram_kbits * 1024 // 8


def virtex7_485t() -> FpgaDevice:
    """Xilinx Virtex-7 XC7VX485T — matches the 'Available resources' row of Table I."""
    return FpgaDevice(
        name="xc7vx485t",
        luts=303_600,
        registers=607_200,
        dsp_slices=2_800,
        bram_kbits=37_080,
        max_frequency_mhz=400.0,
        dram_bandwidth_gbps=12.8,
    )


def virtex7_690t() -> FpgaDevice:
    """Xilinx Virtex-7 XC7VX690T — a larger member of the same family."""
    return FpgaDevice(
        name="xc7vx690t",
        luts=433_200,
        registers=866_400,
        dsp_slices=3_600,
        bram_kbits=52_920,
        max_frequency_mhz=400.0,
        dram_bandwidth_gbps=12.8,
    )


def zynq_7045() -> FpgaDevice:
    """Xilinx Zynq XC7Z045 — the device used by Qiu et al. [12]."""
    return FpgaDevice(
        name="xc7z045",
        luts=218_600,
        registers=437_200,
        dsp_slices=900,
        bram_kbits=19_200,
        max_frequency_mhz=250.0,
        dram_bandwidth_gbps=4.2,
    )


def stratix_v_gt() -> FpgaDevice:
    """Altera Stratix V GT — the device used by Podili et al. [3].

    ALM counts are converted to an approximate 6-LUT equivalent (1 ALM ~ 2
    LUTs) so that utilisation numbers remain loosely comparable with the
    Xilinx parts.
    """
    return FpgaDevice(
        name="stratix-v-gt",
        luts=235_000 * 2,
        registers=940_000,
        dsp_slices=256 * 4,
        bram_kbits=41_000,
        max_frequency_mhz=450.0,
        dram_bandwidth_gbps=12.8,
    )


DEVICES: Dict[str, FpgaDevice] = {
    device.name: device
    for device in (virtex7_485t(), virtex7_690t(), zynq_7045(), stratix_v_gt())
}


def register_device(name: str, device: FpgaDevice, overwrite: bool = False) -> None:
    """Register ``device`` under ``name``, mirroring the network registry.

    Experiment specs reference devices declaratively by name; a silent
    overwrite would retarget every saved spec, so collisions raise unless
    ``overwrite=True`` is passed.
    """
    if not isinstance(name, str) or not name:
        raise TypeError("name must be a non-empty string")
    if not isinstance(device, FpgaDevice):
        raise TypeError(f"expected an FpgaDevice, got {type(device).__name__}")
    if not overwrite and name in DEVICES:
        raise ValueError(
            f"device {name!r} is already registered; pass overwrite=True to replace it"
        )
    DEVICES[name] = device


def known_devices() -> "list[str]":
    """Sorted names the device registry can resolve."""
    return sorted(DEVICES)


def get_device(name: str) -> FpgaDevice:
    """Look up a device by name (see :data:`DEVICES` for the known names)."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known devices: {known_devices()}"
        ) from None


def resolve_device(device: "FpgaDevice | str") -> FpgaDevice:
    """Pass through an :class:`FpgaDevice`, or look one up by registry name."""
    if isinstance(device, FpgaDevice):
        return device
    if isinstance(device, str):
        return get_device(device)
    raise TypeError(f"expected an FpgaDevice or device name, got {type(device).__name__}")

"""FPGA resource estimates and utilisation accounting.

:class:`ResourceEstimate` is the common currency of the hardware models: the
PE model, the engine model and the baselines all produce one, and the
reporting layer turns them into utilisation percentages against a
:class:`~repro.hw.device.FpgaDevice` exactly like the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .device import FpgaDevice

__all__ = [
    "ResourceEstimate",
    "Utilization",
    "utilization",
    "batch_linear_resources",
    "batch_fits",
]


@dataclass(frozen=True)
class ResourceEstimate:
    """A bundle of FPGA resource counts.

    ``multipliers`` tracks logical (fp32) multipliers separately from the DSP
    slices that implement them, mirroring the two columns of Table I.
    """

    luts: float = 0.0
    registers: float = 0.0
    dsp_slices: int = 0
    bram_kbits: float = 0.0
    multipliers: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            luts=self.luts + other.luts,
            registers=self.registers + other.registers,
            dsp_slices=self.dsp_slices + other.dsp_slices,
            bram_kbits=self.bram_kbits + other.bram_kbits,
            multipliers=self.multipliers + other.multipliers,
        )

    def scaled(self, factor: int) -> "ResourceEstimate":
        """Replicate the estimate ``factor`` times (e.g. per-PE -> P PEs)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return ResourceEstimate(
            luts=self.luts * factor,
            registers=self.registers * factor,
            dsp_slices=self.dsp_slices * factor,
            bram_kbits=self.bram_kbits * factor,
            multipliers=self.multipliers * factor,
        )

    def fits(self, device: FpgaDevice) -> bool:
        """Whether the estimate fits within a device's resources."""
        return (
            self.luts <= device.luts
            and self.registers <= device.registers
            and self.dsp_slices <= device.dsp_slices
            and self.bram_kbits <= device.bram_kbits
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the reporting layer."""
        return {
            "luts": self.luts,
            "registers": self.registers,
            "dsp_slices": self.dsp_slices,
            "bram_kbits": self.bram_kbits,
            "multipliers": self.multipliers,
        }


@dataclass(frozen=True)
class Utilization:
    """Resource utilisation of an estimate against a device, in percent."""

    device: FpgaDevice
    luts_pct: float
    registers_pct: float
    dsp_pct: float
    bram_pct: float

    @property
    def bottleneck(self) -> str:
        """Name of the most utilised resource class."""
        usage = {
            "luts": self.luts_pct,
            "registers": self.registers_pct,
            "dsp_slices": self.dsp_pct,
            "bram": self.bram_pct,
        }
        return max(usage, key=usage.get)

    @property
    def feasible(self) -> bool:
        """Whether every resource class stays at or below 100 %."""
        return max(self.luts_pct, self.registers_pct, self.dsp_pct, self.bram_pct) <= 100.0


def batch_linear_resources(
    base: ResourceEstimate, slope: ResourceEstimate, factors
) -> Dict[str, "object"]:
    """Vector twin of ``base + slope.scaled(P)`` over an array of ``P`` values.

    ``factors`` is an integer array (one replication count per design); the
    result maps each resource class to an array computed with exactly the
    float operations — and operation order — of the scalar
    ``base + slope.scaled(P)`` path, so every element is bit-identical to
    its scalar counterpart.  LUT/register/BRAM arrays are float64,
    DSP/multiplier arrays stay integral.
    """
    import numpy as np  # gated: only the vectorized DSE path needs numpy

    factors = np.asarray(factors)
    return {
        "luts": base.luts + slope.luts * factors,
        "registers": base.registers + slope.registers * factors,
        "dsp_slices": base.dsp_slices + slope.dsp_slices * factors,
        "bram_kbits": base.bram_kbits + slope.bram_kbits * factors,
        "multipliers": base.multipliers + slope.multipliers * factors,
    }


def batch_fits(resources: Dict[str, "object"], device: FpgaDevice):
    """Vector twin of :meth:`ResourceEstimate.fits` over resource arrays.

    Takes the mapping produced by :func:`batch_linear_resources` and returns
    a boolean array; elementwise comparisons mirror the scalar conjunction.
    """
    return (
        (resources["luts"] <= device.luts)
        & (resources["registers"] <= device.registers)
        & (resources["dsp_slices"] <= device.dsp_slices)
        & (resources["bram_kbits"] <= device.bram_kbits)
    )


def utilization(estimate: ResourceEstimate, device: FpgaDevice) -> Utilization:
    """Compute percentage utilisation of ``estimate`` on ``device``."""
    return Utilization(
        device=device,
        luts_pct=100.0 * estimate.luts / device.luts,
        registers_pct=100.0 * estimate.registers / device.registers,
        dsp_pct=100.0 * estimate.dsp_slices / device.dsp_slices,
        bram_pct=100.0 * estimate.bram_kbits / device.bram_kbits,
    )

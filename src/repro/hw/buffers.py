"""On-chip buffer sizing and external memory bandwidth model.

The paper's system (Fig. 7) keeps the current image tile rows and the
transformed kernels in on-chip buffers, double-buffered so that computation
never waits for data ("assuming that double buffering is employed at both
image and kernel buffers and enough memory bandwidth is available",
Section V-B).  This module sizes those buffers in block RAM and computes the
external bandwidth needed to sustain the engine at full rate — the quantity
the roofline model checks the double-buffering assumption against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.layers import ConvLayer
from .resources import ResourceEstimate

__all__ = ["BufferConfig", "BufferEstimate", "size_buffers", "required_bandwidth_gbps"]


@dataclass(frozen=True)
class BufferConfig:
    """Buffering policy of the engine.

    Attributes
    ----------
    double_buffered:
        Use ping-pong buffers on image and kernel storage (the paper's
        assumption).
    line_buffer_rows:
        Number of image rows held per channel slice; the data-transform stage
        needs ``m + r - 1`` rows plus ``m`` rows of look-ahead to keep the
        pipeline fed.
    data_width_bits:
        Width of one stored element.
    """

    double_buffered: bool = True
    line_buffer_rows: int = 0
    data_width_bits: int = 32


@dataclass(frozen=True)
class BufferEstimate:
    """Sizing result for one layer/engine combination (in kilobits and BRAM)."""

    image_kbits: float
    kernel_kbits: float
    accumulator_kbits: float
    total_kbits: float
    bram_blocks_36k: int

    def as_resources(self) -> ResourceEstimate:
        """Express the buffers as a :class:`ResourceEstimate` contribution."""
        return ResourceEstimate(bram_kbits=self.total_kbits)


def size_buffers(
    layer: ConvLayer,
    m: int,
    parallel_pes: int,
    config: BufferConfig = BufferConfig(),
) -> BufferEstimate:
    """Size the image, kernel and accumulation buffers for one layer.

    * Image buffer: ``m + r - 1`` rows of the (padded) input, all channels,
      doubled when ping-pong buffering is on.
    * Kernel buffer: the transformed kernels of the ``P`` kernels currently
      resident, for all input channels (``P * C * (m + r - 1)^2`` words),
      doubled for ping-pong.
    * Accumulators: ``P`` output tiles of ``m x m`` words.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if parallel_pes < 1:
        raise ValueError("parallel_pes must be >= 1")
    r = layer.kernel_size
    tile = m + r - 1
    rows = config.line_buffer_rows or (tile + m)
    width = layer.width + 2 * layer.padding
    word_bits = config.data_width_bits
    factor = 2 if config.double_buffered else 1

    image_bits = rows * width * layer.in_channels * word_bits * factor
    kernel_bits = parallel_pes * layer.in_channels * tile * tile * word_bits * factor
    accumulator_bits = parallel_pes * m * m * word_bits

    total_bits = image_bits + kernel_bits + accumulator_bits
    total_kbits = total_bits / 1024.0
    bram_blocks = int(-(-total_bits // (36 * 1024)))
    return BufferEstimate(
        image_kbits=image_bits / 1024.0,
        kernel_kbits=kernel_bits / 1024.0,
        accumulator_kbits=accumulator_bits / 1024.0,
        total_kbits=total_kbits,
        bram_blocks_36k=bram_blocks,
    )


def required_bandwidth_gbps(
    layer: ConvLayer,
    m: int,
    parallel_pes: int,
    frequency_mhz: float,
    data_width_bits: int = 32,
    reuse_input_across_kernels: bool = True,
) -> float:
    """External bandwidth needed to keep the engine busy on ``layer``.

    The engine consumes one ``(m+r-1)^2`` input tile per cycle (shared by all
    PEs when input reuse is on) and produces ``P * m^2`` outputs per cycle,
    accumulated over ``C`` cycles before being written back.  Kernels are
    loaded once per layer and amortised over the whole feature map, so their
    steady-state contribution is negligible and ignored here.

    Returns gigabytes per second.
    """
    if frequency_mhz <= 0:
        raise ValueError("frequency must be positive")
    r = layer.kernel_size
    tile = m + r - 1
    bytes_per_word = data_width_bits / 8.0

    # Effective new input words per cycle: a tile advances by m columns, so
    # only m * tile words are newly read (the rest come from the line buffer).
    input_words_per_cycle = m * tile
    if not reuse_input_across_kernels:
        input_words_per_cycle *= parallel_pes

    # Outputs: P * m^2 words per tile, written once per C cycles.
    output_words_per_cycle = parallel_pes * m * m / max(1, layer.in_channels)

    words_per_second = (input_words_per_cycle + output_words_per_cycle) * frequency_mhz * 1e6
    return words_per_second * bytes_per_word / 1e9

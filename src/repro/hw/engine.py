"""Engine-level hardware model: data transform + P parallel PEs + buffers.

This is the resource side of the paper's proposed system (Fig. 7): a single
data-transform stage feeding ``P`` parallel PEs, each of which convolves the
shared transformed tile ``U`` with its own transformed kernel ``V`` and
accumulates across channels.  The same class also models the reference
architecture of Podili et al. [3] (data transform replicated per PE) so the
Table I comparison and the shared-transform ablation come from one code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from ..winograd.op_count import TransformOpCounts, cached_transform_ops, count_transform_ops
from .arithmetic import Precision
from .calibration import Calibration, DEFAULT_CALIBRATION
from .datapath import StageDatapath, adder_tree_depth, datapath_from_op_count
from .device import FpgaDevice, virtex7_485t
from .pe import PEModel, build_pe, cached_pe
from .resources import ResourceEstimate, Utilization, utilization

__all__ = [
    "EngineConfig",
    "EngineModel",
    "EngineCellModel",
    "build_engine",
    "engine_cell_model",
    "max_parallel_pes",
    "batch_max_parallel_pes",
]


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of one Winograd convolution engine instance.

    Attributes
    ----------
    m, r:
        Minimal-algorithm parameters ``F(m x m, r x r)``.
    parallel_pes:
        Number of parallel PEs ``P``.  When ``None`` the maximum that fits
        the device's multiplier budget is used (Eq. (8)).
    shared_data_transform:
        ``True`` for the paper's proposed architecture (single data transform
        shared by all PEs), ``False`` for the per-PE reference architecture.
    frequency_mhz:
        Target clock frequency (200 MHz in the paper).
    precision:
        Datapath precision.
    buffer_kbits:
        On-chip buffer allocation accounted to the engine (image + kernel +
        accumulation buffers).
    """

    m: int
    r: int = 3
    parallel_pes: Optional[int] = None
    shared_data_transform: bool = True
    frequency_mhz: float = 200.0
    precision: Precision = field(default_factory=Precision.float32)
    buffer_kbits: float = 4096.0

    def __post_init__(self) -> None:
        if self.m < 1 or self.r < 1:
            raise ValueError("m and r must be >= 1")
        if self.parallel_pes is not None and self.parallel_pes < 1:
            raise ValueError("parallel_pes must be >= 1 when given")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def multipliers_per_pe(self) -> int:
        """Multipliers per PE: ``(m + r - 1)^2``."""
        return (self.m + self.r - 1) ** 2


def max_parallel_pes(m: int, r: int, multiplier_budget: int) -> int:
    """Eq. (8): ``P = floor(mT / (m + r - 1)^2)``."""
    if multiplier_budget < 0:
        raise ValueError("multiplier budget must be non-negative")
    per_pe = (m + r - 1) ** 2
    return multiplier_budget // per_pe


def batch_max_parallel_pes(m: int, r: int, multiplier_budgets):
    """Vector twin of :func:`max_parallel_pes` over an array of budgets.

    Returns an integer array of PE counts; floor division on non-negative
    integers matches the scalar ``budget // per_pe`` exactly.
    """
    import numpy as np  # gated: only the vectorized DSE path needs numpy

    budgets = np.asarray(multiplier_budgets)
    if np.any(budgets < 0):
        raise ValueError("multiplier budget must be non-negative")
    per_pe = (m + r - 1) ** 2
    return budgets // per_pe


@dataclass(frozen=True)
class EngineModel:
    """Complete resource/timing model of one engine instance."""

    config: EngineConfig
    device: FpgaDevice
    pe: PEModel
    parallel_pes: int
    shared_stage: Optional[StageDatapath]
    resources: ResourceEstimate
    pipeline_depth: int
    op_counts: TransformOpCounts

    # ------------------------------------------------------------------ #
    @property
    def total_multipliers(self) -> int:
        """General multipliers instantiated across all PEs."""
        return self.parallel_pes * self.pe.multipliers

    @property
    def outputs_per_cycle(self) -> int:
        """Output pixels produced per clock cycle: ``P * m^2``."""
        return self.parallel_pes * self.config.m ** 2

    @property
    def luts_per_pe(self) -> float:
        """Incremental LUT cost of adding one PE (the paper's per-PE slope)."""
        return self.pe.resources.luts

    def device_utilization(self) -> Utilization:
        """Utilisation of the engine on its target device (Table I style)."""
        return utilization(self.resources, self.device)

    def fits_device(self) -> bool:
        """Whether the engine fits its device."""
        return self.resources.fits(self.device)


def build_engine(
    config: EngineConfig,
    device: Optional[FpgaDevice] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    op_counts: Optional[TransformOpCounts] = None,
    prefer_canonical: bool = True,
) -> EngineModel:
    """Build the engine model for a configuration on a device.

    When ``config.parallel_pes`` is ``None`` the PE count is derived from the
    device's DSP budget through Eq. (8): the number of fp32 multipliers the
    DSP fabric can host divided by the multipliers each PE needs.
    """
    device = device or virtex7_485t()
    resources_cal = calibration.resources
    if op_counts is None:
        op_counts = count_transform_ops(config.m, config.r, prefer_canonical)

    pe = build_pe(
        m=config.m,
        r=config.r,
        include_data_transform=not config.shared_data_transform,
        precision=config.precision,
        calibration=resources_cal,
        op_counts=op_counts,
        prefer_canonical=prefer_canonical,
    )

    if config.parallel_pes is not None:
        parallel_pes = config.parallel_pes
    else:
        multiplier_budget = device.dsp_slices // max(1, resources_cal.dsps_per_multiplier)
        parallel_pes = max_parallel_pes(config.m, config.r, multiplier_budget)
        if parallel_pes < 1:
            raise ValueError(
                f"device {device.name} cannot host a single F({config.m}x{config.m}, "
                f"{config.r}x{config.r}) PE"
            )

    shared_stage: Optional[StageDatapath] = None
    total = ResourceEstimate(
        luts=resources_cal.luts_engine_overhead,
        registers=resources_cal.registers_engine_overhead,
        bram_kbits=config.buffer_kbits,
    )
    pipeline_depth = 0
    if config.shared_data_transform:
        shared_stage = datapath_from_op_count(
            "data_transform",
            op_counts.data,
            config.precision,
            resources_cal,
            depth_hint=2 * adder_tree_depth(config.m + config.r - 1),
        )
        total = total + shared_stage.resources
        pipeline_depth += shared_stage.pipeline_depth + resources_cal.register_stages_per_transform

    total = total + pe.resources.scaled(parallel_pes)
    pipeline_depth += pe.pipeline_depth

    return EngineModel(
        config=config,
        device=device,
        pe=pe,
        parallel_pes=parallel_pes,
        shared_stage=shared_stage,
        resources=total,
        pipeline_depth=pipeline_depth,
        op_counts=op_counts,
    )


@dataclass(frozen=True)
class EngineCellModel:
    """Engine structure shared by every design of one ``(m, r, shared)`` group.

    The engine model factors cleanly into pieces that depend only on the
    tile parameters and architecture variant — the PE build, the shared
    transform stage, the fixed overheads, the pipeline depth — and pieces
    that scale with the PE count ``P``.  The batch evaluator computes the
    former once per grid group through this skeleton and applies the
    ``base + slope * P`` closure per design point, reproducing
    :func:`build_engine` exactly.

    Attributes
    ----------
    pe:
        The per-PE model; ``pe.resources`` is the resource slope per PE.
    shared_stage:
        The shared data-transform datapath (``None`` for the per-PE
        reference architecture).
    base_resources:
        Engine overhead plus the shared stage — the ``P``-independent
        resource intercept, summed in :func:`build_engine`'s order.
    pipeline_depth:
        Total pipeline depth ``Dp`` (independent of ``P`` and frequency).
    device_parallel_pes:
        Eq. (8) applied to the whole device DSP budget — the PE count used
        when a design leaves ``multiplier_budget`` unset.  May be < 1 for
        tiles too large for the device; callers decide how to fail.
    """

    m: int
    r: int
    shared_data_transform: bool
    device: FpgaDevice
    pe: PEModel
    shared_stage: Optional[StageDatapath]
    op_counts: TransformOpCounts
    base_resources: ResourceEstimate
    pipeline_depth: int
    device_parallel_pes: int


@lru_cache(maxsize=None)
def engine_cell_model(
    m: int,
    r: int,
    shared_data_transform: bool,
    device: FpgaDevice,
    calibration: Calibration = DEFAULT_CALIBRATION,
    prefer_canonical: bool = True,
    buffer_kbits: float = 4096.0,
) -> EngineCellModel:
    """Build (and memoise) the :class:`EngineCellModel` for one grid group.

    Mirrors :func:`build_engine` piece for piece — same op counts, same PE
    build, same overhead/shared-stage addition order — so completing the
    model with ``base + pe.resources.scaled(P)`` yields bit-identical
    resources to a direct scalar build.
    """
    resources_cal = calibration.resources
    precision = Precision.float32()
    op_counts = cached_transform_ops(m, r, prefer_canonical)
    pe = cached_pe(
        m=m,
        r=r,
        include_data_transform=not shared_data_transform,
        precision=precision,
        calibration=resources_cal,
        prefer_canonical=prefer_canonical,
    )

    device_budget = device.dsp_slices // max(1, resources_cal.dsps_per_multiplier)
    device_parallel_pes = max_parallel_pes(m, r, device_budget)

    shared_stage: Optional[StageDatapath] = None
    base = ResourceEstimate(
        luts=resources_cal.luts_engine_overhead,
        registers=resources_cal.registers_engine_overhead,
        bram_kbits=buffer_kbits,
    )
    pipeline_depth = 0
    if shared_data_transform:
        shared_stage = datapath_from_op_count(
            "data_transform",
            op_counts.data,
            precision,
            resources_cal,
            depth_hint=2 * adder_tree_depth(m + r - 1),
        )
        base = base + shared_stage.resources
        pipeline_depth += shared_stage.pipeline_depth + resources_cal.register_stages_per_transform
    pipeline_depth += pe.pipeline_depth

    return EngineCellModel(
        m=m,
        r=r,
        shared_data_transform=shared_data_transform,
        device=device,
        pe=pe,
        shared_stage=shared_stage,
        op_counts=op_counts,
        base_resources=base,
        pipeline_depth=pipeline_depth,
        device_parallel_pes=device_parallel_pes,
    )

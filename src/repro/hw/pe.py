"""Processing-element (PE) model for 2-D Winograd convolution engines.

A PE implements the 2-D minimal algorithm ``F(m x m, r x r)`` for one kernel:
it receives a transformed data tile ``U`` (shared or computed locally,
depending on the architecture), multiplies it element-wise with its own
transformed kernel ``V``, applies the 2-D inverse transform and accumulates
the ``m x m`` result over input channels (Fig. 5 of the paper).

Two architectural variants are modelled, differing only in whether the data
transform is instantiated *inside* each PE:

* ``include_data_transform=False`` — the paper's **proposed** design, where a
  single shared data-transform stage feeds all PEs (Fig. 7);
* ``include_data_transform=True``  — the **reference** design of Podili et
  al. [3], where every PE recomputes the same data transform.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from ..winograd.op_count import OpCount, TransformOpCounts, count_transform_ops
from .arithmetic import OperatorLibrary, Precision
from .calibration import DEFAULT_CALIBRATION, ResourceCalibration
from .datapath import StageDatapath, adder_tree_depth, datapath_from_op_count
from .resources import ResourceEstimate

__all__ = ["PEModel", "build_pe", "cached_pe"]


@dataclass(frozen=True)
class PEModel:
    """Resource/timing model of one processing element.

    Attributes
    ----------
    m, r:
        Minimal-algorithm parameters.
    include_data_transform:
        Whether the data-transform stage is replicated inside the PE.
    multipliers:
        General multipliers in the element-wise stage: ``(m + r - 1)^2``.
    stages:
        Per-stage datapaths keyed by stage name.
    resources:
        Total resources of the PE (stages + per-PE overhead).
    pipeline_depth:
        Register stages contributed to the engine pipeline by this PE.
    outputs_per_cycle:
        Output pixels produced per clock cycle: ``m^2``.
    """

    m: int
    r: int
    include_data_transform: bool
    multipliers: int
    stages: Dict[str, StageDatapath]
    resources: ResourceEstimate
    pipeline_depth: int
    outputs_per_cycle: int

    @property
    def luts(self) -> float:
        """LUT count of one PE (shorthand for ``resources.luts``)."""
        return self.resources.luts

    @property
    def registers(self) -> float:
        """Register count of one PE."""
        return self.resources.registers

    @property
    def dsp_slices(self) -> int:
        """DSP slice count of one PE."""
        return self.resources.dsp_slices


@lru_cache(maxsize=None)
def cached_pe(
    m: int,
    r: int = 3,
    include_data_transform: bool = False,
    precision: Precision = Precision.float32(),
    calibration: ResourceCalibration = DEFAULT_CALIBRATION.resources,
    prefer_canonical: bool = True,
) -> PEModel:
    """Memoised :func:`build_pe` for the batch evaluator's hot path.

    A PE model depends only on ``(m, r, architecture, precision,
    calibration)`` — none of the per-grid-point axes — so a whole
    budget x frequency plane shares one build.  The returned
    :class:`PEModel` is immutable apart from its ``stages`` mapping, which
    callers must treat as read-only.
    """
    return build_pe(
        m=m,
        r=r,
        include_data_transform=include_data_transform,
        precision=precision,
        calibration=calibration,
        prefer_canonical=prefer_canonical,
    )


def build_pe(
    m: int,
    r: int = 3,
    include_data_transform: bool = False,
    precision: Precision = Precision.float32(),
    calibration: ResourceCalibration = DEFAULT_CALIBRATION.resources,
    op_counts: TransformOpCounts = None,
    prefer_canonical: bool = True,
) -> PEModel:
    """Build the PE model for ``F(m x m, r x r)``.

    Parameters
    ----------
    m, r:
        Minimal-algorithm parameters.
    include_data_transform:
        Replicate the data transform inside the PE (reference-[3] style).
    precision:
        Datapath precision (fp32 reproduces the paper).
    calibration:
        Per-operator resource calibration.
    op_counts:
        Optional pre-computed transform operator counts (useful when studying
        non-default interpolation points); derived from the registered
        transform otherwise.
    prefer_canonical:
        Use published transform matrices when available.
    """
    if op_counts is None:
        op_counts = count_transform_ops(m, r, prefer_canonical)
    n = m + r - 1
    library = OperatorLibrary(precision, calibration)

    stages: Dict[str, StageDatapath] = {}

    if include_data_transform:
        stages["data_transform"] = datapath_from_op_count(
            "data_transform",
            op_counts.data,
            precision,
            calibration,
            depth_hint=2 * adder_tree_depth(n),
        )

    # Element-wise multiplication: n^2 general multiplications per cycle.
    ewise_ops = OpCount(general_multiplications=n * n)
    stages["ewise_mult"] = datapath_from_op_count(
        "ewise_mult",
        ewise_ops,
        precision,
        calibration,
        depth_hint=library.multiplier().latency_cycles,
    )

    stages["inverse_transform"] = datapath_from_op_count(
        "inverse_transform",
        op_counts.inverse,
        precision,
        calibration,
        depth_hint=2 * adder_tree_depth(n),
    )

    # Channel accumulation: one accumulator per output pixel of the tile.
    accumulator_cost = library.accumulator()
    accumulator_resources = accumulator_cost.as_estimate().scaled(m * m)
    stages["accumulate"] = StageDatapath(
        name="accumulate",
        resources=accumulator_resources,
        pipeline_depth=accumulator_cost.latency_cycles,
        operator_count=m * m,
    )

    total = ResourceEstimate(
        luts=calibration.luts_pe_overhead,
        registers=calibration.registers_pe_overhead,
    )
    depth = 0
    for stage in stages.values():
        total = total + stage.resources
        depth += stage.pipeline_depth + calibration.register_stages_per_transform

    return PEModel(
        m=m,
        r=r,
        include_data_transform=include_data_transform,
        multipliers=n * n,
        stages=stages,
        resources=total,
        pipeline_depth=depth,
        outputs_per_cycle=m * m,
    )

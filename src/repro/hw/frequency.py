"""Clock-frequency model.

The paper runs every design at a flat 200 MHz; this module provides a simple
critical-path model so the design-space exploration can check that a target
frequency is actually plausible for a given pipeline structure and flag
configurations whose combinational stages have grown too deep (large ``m``
transforms have wide adder trees which, if not further pipelined, lower the
achievable clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .calibration import DEFAULT_CALIBRATION, ResourceCalibration
from .datapath import StageDatapath

__all__ = [
    "TimingEstimate",
    "estimate_fmax",
    "achievable_frequency",
    "batch_cycle_time_ms",
    "batch_estimate_fmax",
]

#: Approximate propagation delay of one LUT level plus local routing (ns).
_LUT_LEVEL_DELAY_NS = 0.9
#: Levels of logic of one pipelined floating-point add stage.
_FP_ADD_LEVELS = 4
#: Levels of logic of one pipelined floating-point multiply stage.
_FP_MUL_LEVELS = 3
#: Fixed clocking overhead (clock-to-out, setup, skew) in ns.
_CLOCK_OVERHEAD_NS = 0.8


@dataclass(frozen=True)
class TimingEstimate:
    """Result of the critical-path estimate."""

    critical_path_ns: float
    fmax_mhz: float

    def supports(self, frequency_mhz: float) -> bool:
        """Whether the design closes timing at ``frequency_mhz``."""
        return frequency_mhz <= self.fmax_mhz


def estimate_fmax(levels_of_logic: int) -> TimingEstimate:
    """Estimate the maximum clock frequency for a path with N LUT levels."""
    if levels_of_logic < 1:
        levels_of_logic = 1
    path_ns = _CLOCK_OVERHEAD_NS + levels_of_logic * _LUT_LEVEL_DELAY_NS
    return TimingEstimate(critical_path_ns=path_ns, fmax_mhz=1e3 / path_ns)


def batch_cycle_time_ms(frequencies_mhz):
    """Clock-cycle time in milliseconds for an array of clock frequencies.

    Vector twin of the ``1e3 / (frequency_mhz * 1e6)`` expression of the
    latency model (Eq. (9)); identical operation order keeps every element
    bit-identical to the scalar path.
    """
    import numpy as np  # gated: only the vectorized DSE path needs numpy

    return 1e3 / (np.asarray(frequencies_mhz) * 1e6)


def batch_estimate_fmax(levels_of_logic):
    """Vector twin of :func:`estimate_fmax` (fmax in MHz per path depth)."""
    import numpy as np  # gated: only the vectorized DSE path needs numpy

    levels = np.maximum(np.asarray(levels_of_logic), 1)
    return 1e3 / (_CLOCK_OVERHEAD_NS + levels * _LUT_LEVEL_DELAY_NS)


def achievable_frequency(
    stages: Iterable[StageDatapath],
    calibration: ResourceCalibration = DEFAULT_CALIBRATION.resources,
) -> TimingEstimate:
    """Estimate fmax of an engine from its pipeline stages.

    Every stage is internally pipelined at operator granularity (each adder or
    multiplier registers its result — that is what the stage's pipeline depth
    counts), so the combinational critical path per clock is one floating-point
    operator plus its fan-out/fan-in routing.  Stages with very wide fan-out
    (the shared data transform broadcasting to many PEs) incur one extra level
    of routing per factor-of-8 fan-out, which is approximated by the operator
    count heuristic below.
    """
    worst_levels = _FP_ADD_LEVELS
    for stage in stages:
        if stage.operator_count == 0:
            continue
        levels = _FP_MUL_LEVELS if stage.name == "ewise_mult" else _FP_ADD_LEVELS
        if stage.operator_count > 512:
            levels += 2  # very wide stages pay extra routing delay
        elif stage.operator_count > 128:
            levels += 1
        worst_levels = max(worst_levels, levels)
    return estimate_fmax(worst_levels)

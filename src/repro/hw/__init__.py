"""FPGA hardware modelling substrate.

Device library, per-operator arithmetic costs, datapath/PE/engine resource
models, buffer and bandwidth sizing, power and clock-frequency models — the
pieces that replace RTL synthesis in this laptop-scale reproduction.
"""

from .arithmetic import OperatorCost, OperatorLibrary, Precision
from .buffers import BufferConfig, BufferEstimate, required_bandwidth_gbps, size_buffers
from .calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    PowerCalibration,
    ResourceCalibration,
)
from .datapath import (
    StageDatapath,
    adder_tree_depth,
    datapath_from_network,
    datapath_from_op_count,
)
from .device import (
    DEVICES,
    FpgaDevice,
    get_device,
    known_devices,
    register_device,
    resolve_device,
    stratix_v_gt,
    virtex7_485t,
    virtex7_690t,
    zynq_7045,
)
from .engine import EngineConfig, EngineModel, build_engine, max_parallel_pes
from .frequency import TimingEstimate, achievable_frequency, estimate_fmax
from .pe import PEModel, build_pe
from .power import PowerBreakdown, PowerModel
from .resources import ResourceEstimate, Utilization, utilization

__all__ = [
    "FpgaDevice",
    "DEVICES",
    "get_device",
    "known_devices",
    "register_device",
    "resolve_device",
    "virtex7_485t",
    "virtex7_690t",
    "zynq_7045",
    "stratix_v_gt",
    "Precision",
    "OperatorCost",
    "OperatorLibrary",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "ResourceCalibration",
    "PowerCalibration",
    "ResourceEstimate",
    "Utilization",
    "utilization",
    "StageDatapath",
    "adder_tree_depth",
    "datapath_from_op_count",
    "datapath_from_network",
    "PEModel",
    "build_pe",
    "EngineConfig",
    "EngineModel",
    "build_engine",
    "max_parallel_pes",
    "BufferConfig",
    "BufferEstimate",
    "size_buffers",
    "required_bandwidth_gbps",
    "PowerBreakdown",
    "PowerModel",
    "TimingEstimate",
    "estimate_fmax",
    "achievable_frequency",
]

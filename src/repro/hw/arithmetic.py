"""Arithmetic operator cost models.

Maps individual datapath operators (floating-point or fixed-point adders,
multipliers, shifters, constant multipliers) onto FPGA resources and pipeline
latencies.  The transform stages of a Winograd engine consist purely of the
"cheap" operators, while the element-wise stage uses general multipliers —
this split is exactly what gives the proposed design its resource advantage,
so the cost model keeps the two families clearly separate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .calibration import DEFAULT_CALIBRATION, ResourceCalibration
from .resources import ResourceEstimate

__all__ = ["OperatorCost", "OperatorLibrary", "Precision"]


@dataclass(frozen=True)
class Precision:
    """Numeric precision of the datapath.

    ``float32`` reproduces the paper's setting ("single precision floats
    without any quantization"); ``fixed16`` models the 16-bit fixed-point
    datapath of Qiu et al. [12] for cross-comparison.
    """

    name: str
    bits: int
    is_float: bool

    @classmethod
    def float32(cls) -> "Precision":
        """IEEE-754 single precision (the paper's proposed datapath)."""
        return cls(name="float32", bits=32, is_float=True)

    @classmethod
    def fixed16(cls) -> "Precision":
        """16-bit fixed point (the baselines' datapath)."""
        return cls(name="fixed16", bits=16, is_float=False)

    @classmethod
    def from_name(cls, name: str) -> "Precision":
        """Resolve a precision by name; unknown names raise ``ValueError``."""
        table = {"float32": cls.float32(), "fixed16": cls.fixed16()}
        if name not in table:
            raise ValueError(f"unknown precision {name!r}; known: {sorted(table)}")
        return table[name]


@dataclass(frozen=True)
class OperatorCost:
    """Resources and latency of one datapath operator instance."""

    luts: float
    registers: float
    dsp_slices: int
    latency_cycles: int
    is_multiplier: bool = False

    def as_estimate(self) -> ResourceEstimate:
        """The operator's footprint as a :class:`ResourceEstimate`."""
        return ResourceEstimate(
            luts=self.luts,
            registers=self.registers,
            dsp_slices=self.dsp_slices,
            multipliers=1 if self.is_multiplier else 0,
        )


class OperatorLibrary:
    """Per-operator costs for a given precision and calibration.

    The library scales the calibrated fp32 coefficients by operand width for
    other precisions, which keeps fixed-point baselines roughly comparable
    without a second calibration pass.
    """

    def __init__(
        self,
        precision: Precision = Precision.float32(),
        calibration: ResourceCalibration = DEFAULT_CALIBRATION.resources,
    ) -> None:
        self.precision = precision
        self.calibration = calibration
        self._width_scale = precision.bits / calibration.data_width_bits

    # ------------------------------------------------------------------ #
    def adder(self) -> OperatorCost:
        """Adder/subtractor in a transform stage."""
        return OperatorCost(
            luts=self.calibration.luts_per_transform_add * self._width_scale,
            registers=self.calibration.registers_per_word * self._width_scale,
            dsp_slices=0,
            latency_cycles=1,
        )

    def accumulator(self) -> OperatorCost:
        """Channel accumulator at a PE output."""
        return OperatorCost(
            luts=self.calibration.luts_per_accumulator * self._width_scale,
            registers=self.calibration.registers_per_word * self._width_scale,
            dsp_slices=0,
            latency_cycles=1,
        )

    def shifter(self) -> OperatorCost:
        """Power-of-two constant scaling (exponent adjustment / wiring)."""
        return OperatorCost(
            luts=self.calibration.luts_per_shift,
            registers=0.0,
            dsp_slices=0,
            latency_cycles=0,
        )

    def constant_multiplier(self) -> OperatorCost:
        """Non-trivial constant multiplier in a transform stage."""
        return OperatorCost(
            luts=self.calibration.luts_per_constant_mult * self._width_scale,
            registers=self.calibration.registers_per_word * self._width_scale,
            dsp_slices=self.calibration.dsps_per_constant_mult,
            latency_cycles=1,
        )

    def multiplier(self) -> OperatorCost:
        """General (data x data) multiplier of the element-wise stage."""
        dsps = self.calibration.dsps_per_multiplier
        if not self.precision.is_float:
            # A 16x16 fixed-point multiply fits in a single DSP slice.
            dsps = 1
        return OperatorCost(
            luts=self.calibration.luts_per_multiplier * self._width_scale,
            registers=self.calibration.registers_per_word * self._width_scale,
            dsp_slices=dsps,
            latency_cycles=3 if self.precision.is_float else 1,
            is_multiplier=True,
        )

    # ------------------------------------------------------------------ #
    def costs(self) -> Dict[str, OperatorCost]:
        """All operator costs keyed by the op kinds used in dataflow graphs."""
        return {
            "add": self.adder(),
            "sub": self.adder(),
            "accumulate": self.accumulator(),
            "shift": self.shifter(),
            "cmul": self.constant_multiplier(),
            "mul": self.multiplier(),
        }

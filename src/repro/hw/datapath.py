"""Datapath construction: from operator counts to resources and pipeline depth.

A Winograd engine stage (data transform, element-wise multiply, inverse
transform) is a fully spatial arithmetic network — one hardware operator per
operation in the tile's dataflow graph — so its resource cost is the sum of
its operator costs and its pipeline depth is the depth of the operator DAG.
This module performs that mapping for both representations used in the
library:

* an :class:`~repro.winograd.op_count.OpCount` (aggregate counts, used by the
  fast analytical models), and
* a :class:`~repro.winograd.strength_reduction.MatVecNetwork` (an explicit
  operator DAG, used when a more faithful depth estimate is wanted).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..winograd.op_count import OpCount
from ..winograd.strength_reduction import MatVecNetwork
from .arithmetic import OperatorLibrary, Precision
from .calibration import DEFAULT_CALIBRATION, ResourceCalibration
from .resources import ResourceEstimate

__all__ = ["StageDatapath", "datapath_from_op_count", "datapath_from_network", "adder_tree_depth"]


def adder_tree_depth(terms: int) -> int:
    """Depth of a balanced adder tree combining ``terms`` operands."""
    if terms <= 1:
        return 0
    return math.ceil(math.log2(terms))


@dataclass(frozen=True)
class StageDatapath:
    """Resources and timing of one fully spatial pipeline stage.

    Attributes
    ----------
    name:
        Stage label (``"data_transform"``, ``"ewise_mult"``, ...).
    resources:
        Aggregate resource estimate of the stage's operators.
    pipeline_depth:
        Number of register stages the stage contributes to the engine
        pipeline (``Dp`` in Eq. (9) is the sum over stages).
    operator_count:
        Total number of arithmetic operators instantiated.
    """

    name: str
    resources: ResourceEstimate
    pipeline_depth: int
    operator_count: int


def datapath_from_op_count(
    name: str,
    ops: OpCount,
    precision: Precision = Precision.float32(),
    calibration: ResourceCalibration = DEFAULT_CALIBRATION.resources,
    depth_hint: Optional[int] = None,
) -> StageDatapath:
    """Build a stage datapath from aggregate operator counts.

    The pipeline depth defaults to a balanced-tree estimate over the stage's
    additions (each 1-D transform application is a small adder tree); callers
    that know the real structure can pass ``depth_hint``.
    """
    library = OperatorLibrary(precision, calibration)
    costs = library.costs()
    resources = ResourceEstimate()
    resources = resources + costs["add"].as_estimate().scaled(ops.additions)
    resources = resources + costs["shift"].as_estimate().scaled(ops.shift_multiplications)
    resources = resources + costs["cmul"].as_estimate().scaled(ops.constant_multiplications)
    resources = resources + costs["mul"].as_estimate().scaled(ops.general_multiplications)

    if depth_hint is not None:
        depth = depth_hint
    else:
        depth = 0
        if ops.general_multiplications:
            depth += costs["mul"].latency_cycles
        if ops.additions:
            # Each output of a transform is an adder tree over at most the
            # input-tile width; use the average fan-in as a balanced estimate.
            depth += max(1, adder_tree_depth(max(2, ops.additions // max(1, ops.flops // 8))))
        if ops.constant_multiplications:
            depth += costs["cmul"].latency_cycles
    operator_count = ops.flops
    return StageDatapath(
        name=name,
        resources=resources,
        pipeline_depth=max(depth, 1) if operator_count else 0,
        operator_count=operator_count,
    )


def datapath_from_network(
    name: str,
    networks: Iterable[MatVecNetwork],
    precision: Precision = Precision.float32(),
    calibration: ResourceCalibration = DEFAULT_CALIBRATION.resources,
) -> StageDatapath:
    """Build a stage datapath from explicit strength-reduced networks.

    ``networks`` is typically the row- and column-pass networks of one 2-D
    transform.  The depth is the longest chain of add/sub/cmul operations
    through any single network (shifts are wiring and add no latency).
    """
    library = OperatorLibrary(precision, calibration)
    costs = library.costs()
    resources = ResourceEstimate()
    total_ops = 0
    max_depth = 0
    for network in networks:
        resources = resources + costs["add"].as_estimate().scaled(network.adder_count)
        resources = resources + costs["shift"].as_estimate().scaled(network.shift_count)
        resources = resources + costs["cmul"].as_estimate().scaled(network.multiplier_count)
        total_ops += network.adder_count + network.shift_count + network.multiplier_count

        # Longest dependency chain through the network's DAG.
        produced_depth = {}
        depth_here = 0
        for op in network.operations:
            latency = 0 if op.kind == "shift" else 1
            input_depth = max((produced_depth.get(name, 0) for name in op.inputs), default=0)
            produced_depth[op.output] = input_depth + latency
            depth_here = max(depth_here, produced_depth[op.output])
        max_depth = max(max_depth, depth_here)
    return StageDatapath(
        name=name,
        resources=resources,
        pipeline_depth=max_depth,
        operator_count=total_ops,
    )

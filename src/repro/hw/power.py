"""Power model for FPGA accelerator designs.

Total power is modelled as a static term plus dynamic terms proportional to
the amount of active logic of each resource class, scaled linearly with clock
frequency relative to the calibration point:

.. math::

    P = P_{static} + \\frac{f}{f_{cal}} \\alpha
        (k_{LUT} N_{LUT} + k_{DSP} N_{DSP} + k_{REG} N_{REG} + k_{BRAM} N_{BRAM})

This is the standard first-order FPGA power decomposition used by vendor
estimation tools; the coefficients in :mod:`repro.hw.calibration` are fitted
to the wattages reported in Table II so that the reproduced power-efficiency
comparisons land in the right regime.  EXPERIMENTS.md records the residual
paper-vs-model differences per design point.
"""

from __future__ import annotations

from dataclasses import dataclass

from .calibration import DEFAULT_CALIBRATION, PowerCalibration
from .resources import ResourceEstimate

__all__ = ["PowerBreakdown", "PowerModel"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power of one design, in watts."""

    static_watts: float
    logic_watts: float
    dsp_watts: float
    register_watts: float
    bram_watts: float

    @property
    def dynamic_watts(self) -> float:
        """Dynamic power: logic + DSP + register + BRAM contributions."""
        return self.logic_watts + self.dsp_watts + self.register_watts + self.bram_watts

    @property
    def total_watts(self) -> float:
        """Total power: static plus dynamic."""
        return self.static_watts + self.dynamic_watts


class PowerModel:
    """Evaluate the first-order power model for resource estimates."""

    def __init__(self, calibration: PowerCalibration = DEFAULT_CALIBRATION.power) -> None:
        self.calibration = calibration

    def breakdown(
        self, resources: ResourceEstimate, frequency_mhz: float
    ) -> PowerBreakdown:
        """Compute the per-component power breakdown of a design."""
        if frequency_mhz <= 0:
            raise ValueError("frequency must be positive")
        cal = self.calibration
        scale = (frequency_mhz / cal.calibration_frequency_mhz) * cal.activity_factor
        return PowerBreakdown(
            static_watts=cal.static_watts,
            logic_watts=scale * cal.watts_per_kilo_lut * resources.luts / 1e3,
            dsp_watts=scale * cal.watts_per_dsp * resources.dsp_slices,
            register_watts=scale * cal.watts_per_kilo_register * resources.registers / 1e3,
            bram_watts=scale * cal.watts_per_megabit_bram * resources.bram_kbits / 1e3,
        )

    def total_watts(self, resources: ResourceEstimate, frequency_mhz: float) -> float:
        """Total power in watts."""
        return self.breakdown(resources, frequency_mhz).total_watts

    def batch_total_watts(self, resources, frequency_mhz):
        """Vector twin of :meth:`total_watts` over arrays of designs.

        ``resources`` is a mapping of resource-class arrays (as produced by
        :func:`repro.hw.resources.batch_linear_resources`) and
        ``frequency_mhz`` an aligned array.  Every element is computed with
        the same float operations, in the same order, as the scalar
        :meth:`breakdown` path, so results are bit-identical per design.
        """
        import numpy as np  # gated: only the vectorized DSE path needs numpy

        frequency_mhz = np.asarray(frequency_mhz)
        if np.any(frequency_mhz <= 0):
            raise ValueError("frequency must be positive")
        cal = self.calibration
        scale = (frequency_mhz / cal.calibration_frequency_mhz) * cal.activity_factor
        logic = scale * cal.watts_per_kilo_lut * resources["luts"] / 1e3
        dsp = scale * cal.watts_per_dsp * resources["dsp_slices"]
        register = scale * cal.watts_per_kilo_register * resources["registers"] / 1e3
        bram = scale * cal.watts_per_megabit_bram * resources["bram_kbits"] / 1e3
        # Same association as PowerBreakdown.total_watts:
        # static + (((logic + dsp) + register) + bram).
        return cal.static_watts + (logic + dsp + register + bram)

    def power_efficiency(
        self, throughput_gops: float, resources: ResourceEstimate, frequency_mhz: float
    ) -> float:
        """GOPS per watt — the paper's power-efficiency metric."""
        watts = self.total_watts(resources, frequency_mhz)
        if watts <= 0:
            raise ValueError("modelled power must be positive")
        return throughput_gops / watts

"""Functional Winograd convolution over full CNN feature maps.

This is the software (NumPy) realisation of the algorithm the paper's hardware
engine implements: tiled 2-D minimal filtering ``F(m x m, r x r)`` applied per
channel and accumulated over channels, for every kernel (Eq. (1) restructured
through Eq. (3)).  It exists so the reproduction can

* verify numerically that the fast algorithm produces the same results as a
  direct (spatial) convolution for every configuration the DSE probes, and
* serve as the golden reference the cycle-level engine simulator is checked
  against.

The implementation favours clarity over peak NumPy throughput; it is easily
fast enough for the layer sizes exercised by the tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .matrices import get_transform
from .tiling import assemble_output, extract_tiles, plan_tiles
from .toom_cook import WinogradTransform
from .transforms import (
    batched_data_transform,
    batched_filter_transform,
    batched_inverse_transform,
)

__all__ = ["WinogradConv2D", "winograd_conv2d", "winograd_correlate_1d"]


def winograd_correlate_1d(
    signal: np.ndarray, taps: np.ndarray, m: int, transform: Optional[WinogradTransform] = None
) -> np.ndarray:
    """Valid-mode 1-D correlation computed with tiled ``F(m, r)``.

    Provided mainly for testing the 1-D engine building block; CNN layers use
    :func:`winograd_conv2d`.
    """
    signal = np.asarray(signal, dtype=np.float64)
    taps = np.asarray(taps, dtype=np.float64)
    if signal.ndim != 1 or taps.ndim != 1:
        raise ValueError("signal and taps must be 1-D")
    r = taps.size
    if transform is None:
        transform = get_transform(m, r)
    if transform.m != m or transform.r != r:
        raise ValueError("transform parameters do not match m / taps length")
    n = transform.n
    out_len = signal.size - r + 1
    if out_len < 1:
        raise ValueError("taps longer than signal")
    num_tiles = -(-out_len // m)
    padded_len = (num_tiles - 1) * m + n
    padded = np.zeros(padded_len, dtype=np.float64)
    padded[: signal.size] = signal
    v = taps @ transform.G.T
    out = np.empty(num_tiles * m, dtype=np.float64)
    for t in range(num_tiles):
        d = padded[t * m : t * m + n]
        u = d @ transform.BT.T
        out[t * m : (t + 1) * m] = (u * v) @ transform.AT.T
    return out[:out_len]


@dataclass
class WinogradConv2D:
    """A reusable Winograd convolution operator for a fixed ``(m, r)``.

    Mirrors the hardware engine's split into an offline filter transform and
    an online data path: :meth:`prepare_filters` corresponds to the
    pre-computed kernel buffers ``V`` of Fig. 7, and :meth:`__call__` runs the
    data transform, element-wise multiplication and inverse transform stages.

    Parameters
    ----------
    m:
        Output tile size.
    r:
        Kernel size (must match the kernels passed in).
    prefer_canonical:
        Use published (Lavin) transform matrices when available.
    """

    m: int
    r: int = 3
    prefer_canonical: bool = True

    def __post_init__(self) -> None:
        self.transform = get_transform(self.m, self.r, self.prefer_canonical)

    # ------------------------------------------------------------------ #
    def prepare_filters(self, kernels: np.ndarray) -> np.ndarray:
        """Pre-compute filter transforms ``V = G g G^T`` for a kernel bank.

        Parameters
        ----------
        kernels:
            Array of shape ``(K, C, r, r)``.

        Returns
        -------
        np.ndarray
            Transformed kernels of shape ``(K, C, n, n)``.
        """
        kernels = np.asarray(kernels, dtype=np.float64)
        if kernels.ndim != 4 or kernels.shape[-2:] != (self.r, self.r):
            raise ValueError(
                f"kernels must have shape (K, C, {self.r}, {self.r}), got {kernels.shape}"
            )
        return batched_filter_transform(self.transform, kernels)

    # ------------------------------------------------------------------ #
    def __call__(
        self,
        feature_map: np.ndarray,
        kernels: np.ndarray,
        padding: int = 0,
        transformed_filters: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Convolve a feature map with a kernel bank.

        Parameters
        ----------
        feature_map:
            Input of shape ``(N, C, H, W)``.
        kernels:
            Kernels of shape ``(K, C, r, r)``.  May be ``None`` only when
            ``transformed_filters`` is provided.
        padding:
            Symmetric zero padding (VGG uses 1).
        transformed_filters:
            Optional pre-computed output of :meth:`prepare_filters`.

        Returns
        -------
        np.ndarray
            Output feature map of shape ``(N, K, H_out, W_out)``.
        """
        feature_map = np.asarray(feature_map, dtype=np.float64)
        if feature_map.ndim != 4:
            raise ValueError(f"feature map must be (N, C, H, W), got {feature_map.shape}")
        if transformed_filters is None:
            transformed_filters = self.prepare_filters(kernels)
        else:
            transformed_filters = np.asarray(transformed_filters, dtype=np.float64)
        batch, channels, height, width = feature_map.shape
        num_kernels, kernel_channels = transformed_filters.shape[:2]
        if kernel_channels != channels:
            raise ValueError(
                f"kernel channel count {kernel_channels} does not match input {channels}"
            )

        grid = plan_tiles(height, width, self.m, self.r, padding=padding)
        # (N, C, ty, tx, t, t)
        tiles = extract_tiles(feature_map, grid, padding=padding)
        # U: (N, C, ty, tx, n, n)
        u = batched_data_transform(self.transform, tiles)
        # Element-wise multiply against every kernel and sum over channels:
        # result M has shape (N, K, ty, tx, n, n).
        products = np.einsum("nctyab,kcab->nktyab", u, transformed_filters, optimize=True)
        out_tiles = batched_inverse_transform(self.transform, products)
        return assemble_output(out_tiles, grid)


def winograd_conv2d(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    m: int,
    padding: int = 0,
    prefer_canonical: bool = True,
) -> np.ndarray:
    """One-shot tiled Winograd convolution (see :class:`WinogradConv2D`)."""
    kernels = np.asarray(kernels, dtype=np.float64)
    if kernels.ndim != 4:
        raise ValueError(f"kernels must be (K, C, r, r), got {kernels.shape}")
    r = kernels.shape[-1]
    if kernels.shape[-2] != r:
        raise ValueError("only square kernels are supported")
    op = WinogradConv2D(m=m, r=r, prefer_canonical=prefer_canonical)
    return op(feature_map, kernels, padding=padding)

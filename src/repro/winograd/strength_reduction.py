"""Strength reduction of constant multiplications into shift/add networks.

The paper's data-transform stage is "composed of simple arithmetic and
constant multiplications that can easily be implemented using shifters and
adders" (Section IV-B).  This module makes that statement quantitative: every
constant appearing in a transform matrix is decomposed into a canonical
signed-digit (CSD) shift/add network, which lets the hardware resource model
(:mod:`repro.hw.resources`) price the transform stages in adders and shifters
instead of generic multipliers.

Two levels of detail are provided:

* :func:`constant_cost` — adders/shifters needed to multiply a value by one
  rational constant;
* :func:`matvec_network` — the full shift/add network of a constant
  matrix-vector product, one :class:`ConstantOp` per scheduled operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from functools import lru_cache
from typing import List, Sequence, Tuple

from .exact import is_power_of_two_fraction

__all__ = [
    "csd_digits",
    "ConstantCost",
    "constant_cost",
    "ConstantOp",
    "MatVecNetwork",
    "matvec_network",
]


def csd_digits(value: int) -> List[int]:
    """Canonical signed-digit representation of a non-negative integer.

    Returns a list of digits in ``{-1, 0, +1}`` from least to most significant
    such that ``sum(d_i * 2^i) == value`` and no two consecutive digits are
    non-zero.  The CSD form minimises the number of non-zero digits and hence
    the number of add/subtract terms of a constant multiplier.
    """
    if value < 0:
        raise ValueError("csd_digits expects a non-negative integer")
    digits: List[int] = []
    while value:
        if value & 1:
            # Choose +1 or -1 so that the remaining value stays even-heavy.
            remainder = 2 - (value % 4)
            if remainder == 2:
                remainder = 1
            digits.append(remainder)
            value -= remainder
        else:
            digits.append(0)
        value //= 2
    return digits or [0]


@dataclass(frozen=True)
class ConstantCost:
    """Hardware cost of multiplying a signal by a rational constant.

    Attributes
    ----------
    constant:
        The constant itself.
    adders:
        Add/subtract operations of the shift/add network (0 for powers of two
        and ``+-1``).
    shifts:
        Wiring-only shifts (free in LUTs, listed for completeness).
    needs_multiplier:
        ``True`` when the constant is not exactly representable as a dyadic
        shift/add network (e.g. ``1/6``) and a real multiplier (or a divider /
        reciprocal ROM) is required instead.
    """

    constant: Fraction
    adders: int
    shifts: int
    needs_multiplier: bool

    @property
    def is_trivial(self) -> bool:
        """True for 0 and +-1 — pure wiring."""
        return self.constant == 0 or abs(self.constant) == 1


def constant_cost(constant: Fraction) -> ConstantCost:
    """Cost of multiplying by ``constant`` using shifts and adders.

    Dyadic rationals (integer numerator, power-of-two denominator) are
    decomposed through CSD; anything else is flagged as needing a real
    multiplier.  Costs are memoised per normalized constant — transform
    matrices across a whole design-space sweep reuse a small set of
    constants, so batch evaluation pays the CSD walk once per value.
    """
    return _constant_cost(Fraction(constant))


@lru_cache(maxsize=None)
def _constant_cost(constant: Fraction) -> ConstantCost:
    if constant == 0 or abs(constant) == 1:
        return ConstantCost(constant, adders=0, shifts=0, needs_multiplier=False)
    if is_power_of_two_fraction(constant):
        return ConstantCost(constant, adders=0, shifts=1, needs_multiplier=False)
    denominator = constant.denominator
    if denominator & (denominator - 1):
        # Non-dyadic (e.g. 1/6, 2/9): cannot be built exactly from shifts/adds.
        return ConstantCost(constant, adders=0, shifts=0, needs_multiplier=True)
    digits = csd_digits(abs(constant.numerator))
    nonzero = sum(1 for digit in digits if digit)
    adders = max(nonzero - 1, 0)
    shifts = nonzero + (1 if denominator > 1 else 0)
    return ConstantCost(constant, adders=adders, shifts=shifts, needs_multiplier=False)


@dataclass(frozen=True)
class ConstantOp:
    """One scheduled operation of a constant matrix-vector network.

    ``kind`` is one of ``"add"``, ``"sub"``, ``"shift"`` or ``"cmul"`` (real
    constant multiplier); ``output`` names the produced intermediate and
    ``inputs`` the consumed ones so the network forms a DAG that the hardware
    datapath model can map onto LUT/DSP resources.
    """

    kind: str
    output: str
    inputs: Tuple[str, ...]
    constant: Fraction = Fraction(0)


@dataclass
class MatVecNetwork:
    """Shift/add network realising ``y = M x`` for a constant matrix ``M``.

    Attributes
    ----------
    operations:
        Topologically ordered operations.
    input_names, output_names:
        Names of the primary inputs / outputs.
    """

    operations: List[ConstantOp] = field(default_factory=list)
    input_names: List[str] = field(default_factory=list)
    output_names: List[str] = field(default_factory=list)

    @property
    def adder_count(self) -> int:
        """Number of add/sub operations (incl. those inside constant mults)."""
        return sum(1 for op in self.operations if op.kind in ("add", "sub"))

    @property
    def shift_count(self) -> int:
        """Number of shift operations."""
        return sum(1 for op in self.operations if op.kind == "shift")

    @property
    def multiplier_count(self) -> int:
        """Number of real constant multipliers that could not be reduced."""
        return sum(1 for op in self.operations if op.kind == "cmul")


def matvec_network(
    matrix: Sequence[Sequence[Fraction]], prefix: str = "x"
) -> MatVecNetwork:
    """Build the strength-reduced network of ``y = M x``.

    Every non-zero entry contributes a scaled term (pure wiring, a shift, a
    CSD shift/add sub-network, or a ``cmul``); terms of a row are then summed
    with a balanced chain of adders.
    """
    network = MatVecNetwork()
    width = len(matrix[0]) if matrix else 0
    network.input_names = [f"{prefix}{i}" for i in range(width)]
    temp_counter = 0

    def new_temp() -> str:
        """A fresh temporary-value name."""
        nonlocal temp_counter
        temp_counter += 1
        return f"t{temp_counter}"

    for row_index, row in enumerate(matrix):
        term_names: List[str] = []
        term_negative: List[bool] = []
        for col_index, raw_value in enumerate(row):
            value = Fraction(raw_value)
            if value == 0:
                continue
            source = network.input_names[col_index]
            cost = constant_cost(value)
            if cost.is_trivial:
                term_names.append(source)
                term_negative.append(value < 0)
                continue
            produced = new_temp()
            if cost.needs_multiplier:
                network.operations.append(
                    ConstantOp("cmul", produced, (source,), constant=abs(value))
                )
            elif cost.adders == 0:
                network.operations.append(
                    ConstantOp("shift", produced, (source,), constant=abs(value))
                )
            else:
                # CSD decomposition: emit the shifts then the adds.
                digits = csd_digits(abs(value.numerator))
                partial_names: List[str] = []
                partial_signs: List[int] = []
                for bit, digit in enumerate(digits):
                    if digit == 0:
                        continue
                    shifted = new_temp()
                    shift_amount = Fraction(2) ** bit / value.denominator
                    network.operations.append(
                        ConstantOp("shift", shifted, (source,), constant=shift_amount)
                    )
                    partial_names.append(shifted)
                    partial_signs.append(digit)
                accumulated = partial_names[0]
                for name, sign in zip(partial_names[1:], partial_signs[1:]):
                    summed = new_temp()
                    network.operations.append(
                        ConstantOp(
                            "add" if sign > 0 else "sub", summed, (accumulated, name)
                        )
                    )
                    accumulated = summed
                produced = accumulated
            term_names.append(produced)
            term_negative.append(value < 0)

        if not term_names:
            output = f"y{row_index}"
            network.output_names.append(output)
            continue
        accumulated = term_names[0]
        # A leading negative term is folded into the first combination below;
        # if it is the only term it still needs an explicit negation (counted
        # as a subtraction from zero).
        leading_negative = term_negative[0]
        if len(term_names) == 1 and leading_negative:
            negated = new_temp()
            network.operations.append(ConstantOp("sub", negated, (accumulated,)))
            accumulated = negated
        for name, negative in zip(term_names[1:], term_negative[1:]):
            combined = new_temp()
            kind = "sub" if negative else "add"
            network.operations.append(ConstantOp(kind, combined, (accumulated, name)))
            accumulated = combined
        network.output_names.append(accumulated)
    return network

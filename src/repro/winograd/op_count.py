"""Operator counting for Winograd transform stages.

The design-space exploration in Section III of the paper rests on three
per-tile operation counts (Eq. (5)):

* ``beta``  — floating-point operations of one 2-D *data* transform
  ``U = B^T d B``,
* ``gamma`` — operations of one 2-D *filter* transform ``V = G g G^T``,
* ``delta`` — operations of one 2-D *inverse* transform ``Y = A^T M A``.

This module derives those counts directly from the transform matrices instead
of hard-coding literature values: for a constant matrix-vector product the
number of additions/subtractions and non-trivial constant multiplications is
read off the matrix sparsity pattern, and 2-D (nested) transforms are counted
as the appropriate number of row/column 1-D applications.  This keeps the
complexity model consistent with whatever transform (canonical or generated,
any interpolation points) the exploration is currently using.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Sequence, Tuple

from .exact import is_power_of_two_fraction
from .matrices import get_transform
from .toom_cook import WinogradTransform

__all__ = [
    "OpCount",
    "matvec_ops",
    "nested_2d_ops",
    "TransformOpCounts",
    "count_transform_ops",
    "cached_transform_ops",
    "spatial_tile_ops",
]


@dataclass(frozen=True)
class OpCount:
    """Operation counts of a linear-transform evaluation.

    Attributes
    ----------
    additions:
        Number of floating-point additions/subtractions.
    shift_multiplications:
        Multiplications by powers of two (realisable as exponent adjustment /
        shift, essentially free in hardware but still a FLOP in software).
    constant_multiplications:
        Multiplications by non-trivial constants (neither ``0``/``+-1`` nor a
        power of two); require a real multiplier or shift-add network.
    general_multiplications:
        Data-dependent multiplications (only non-zero for the element-wise
        product stage, never for the transforms themselves).
    """

    additions: int = 0
    shift_multiplications: int = 0
    constant_multiplications: int = 0
    general_multiplications: int = 0

    # ------------------------------------------------------------------ #
    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.additions + other.additions,
            self.shift_multiplications + other.shift_multiplications,
            self.constant_multiplications + other.constant_multiplications,
            self.general_multiplications + other.general_multiplications,
        )

    def scaled(self, factor: int) -> "OpCount":
        """Return the counts multiplied by an integer repetition ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return OpCount(
            self.additions * factor,
            self.shift_multiplications * factor,
            self.constant_multiplications * factor,
            self.general_multiplications * factor,
        )

    # ------------------------------------------------------------------ #
    @property
    def flops(self) -> int:
        """Total floating-point operations (the paper's FLOP metric).

        Counts every addition and every multiplication (shift, constant and
        general) as one operation — the convention used by Lavin & Gray and by
        the paper when quoting transform complexities.
        """
        return (
            self.additions
            + self.shift_multiplications
            + self.constant_multiplications
            + self.general_multiplications
        )

    @property
    def cheap_ops(self) -> int:
        """Operations that do not need a hardware multiplier."""
        return self.additions + self.shift_multiplications

    @property
    def multiplier_ops(self) -> int:
        """Operations that occupy a hardware multiplier (DSP)."""
        return self.constant_multiplications + self.general_multiplications


def _classify_entry(value: Fraction) -> str:
    """Classify a matrix entry as ``zero``, ``unit``, ``shift`` or ``general``."""
    if value == 0:
        return "zero"
    if value == 1 or value == -1:
        return "unit"
    if is_power_of_two_fraction(value):
        return "shift"
    return "general"


def matvec_ops(matrix: Sequence[Sequence[Fraction]]) -> OpCount:
    """Operation count of one matrix-vector product with a constant matrix.

    Each output row with ``k`` non-zero entries needs ``k - 1`` additions;
    every non-unit entry needs a multiplication classified by whether the
    constant is a power of two.
    """
    additions = 0
    shifts = 0
    generals = 0
    for row in matrix:
        nonzero = 0
        for value in row:
            kind = _classify_entry(Fraction(value))
            if kind == "zero":
                continue
            nonzero += 1
            if kind == "shift":
                shifts += 1
            elif kind == "general":
                generals += 1
        if nonzero > 0:
            additions += nonzero - 1
    return OpCount(
        additions=additions,
        shift_multiplications=shifts,
        constant_multiplications=generals,
    )


def nested_2d_ops(matrix: Sequence[Sequence[Fraction]], input_width: int) -> OpCount:
    """Operation count of the nested 2-D application ``M x M^T`` style.

    Applying an ``(out x in)`` matrix ``M`` to a 2-D tile ``X`` of shape
    ``(in, input_width)`` as ``M X M^T`` costs ``input_width`` matrix-vector
    products for the column pass (producing an ``out x input_width``
    intermediate) plus ``out`` products for the row pass.
    """
    rows = len(matrix)
    single = matvec_ops(matrix)
    return single.scaled(input_width + rows)


@dataclass(frozen=True)
class TransformOpCounts:
    """Per-tile operation counts of an ``F(m x m, r x r)`` algorithm.

    ``beta``, ``gamma`` and ``delta`` follow the naming of Eq. (5) in the
    paper; ``multiplications`` is the element-wise stage ``(m + r - 1)^2``.
    """

    m: int
    r: int
    data: OpCount
    filter: OpCount
    inverse: OpCount
    multiplications: int

    @property
    def beta(self) -> int:
        """FLOPs of one 2-D data transform (``beta`` in Eq. (5))."""
        return self.data.flops

    @property
    def gamma(self) -> int:
        """FLOPs of one 2-D filter transform (``gamma`` in Eq. (5))."""
        return self.filter.flops

    @property
    def delta(self) -> int:
        """FLOPs of one 2-D inverse transform (``delta`` in Eq. (5))."""
        return self.inverse.flops

    @property
    def transform_flops(self) -> int:
        """Total transform FLOPs per tile (data + filter + inverse)."""
        return self.beta + self.gamma + self.delta

    @property
    def outputs_per_tile(self) -> int:
        """Output pixels produced per tile, ``m^2``."""
        return self.m * self.m


def count_transform_ops(
    m: int, r: int, prefer_canonical: bool = True
) -> TransformOpCounts:
    """Count per-tile transform operations for ``F(m x m, r x r)``.

    The counts are derived from the actual transform matrices returned by
    :func:`repro.winograd.matrices.get_transform`.
    """
    transform = get_transform(m, r, prefer_canonical)
    return count_transform_ops_for(transform)


@lru_cache(maxsize=None)
def cached_transform_ops(
    m: int, r: int, prefer_canonical: bool = True
) -> TransformOpCounts:
    """Memoised :func:`count_transform_ops`.

    The per-tile counts are pure functions of ``(m, r, prefer_canonical)``
    but deriving them walks exact-``Fraction`` transform matrices, which is
    by far the most expensive scalar step of a design evaluation.  The batch
    evaluator (:mod:`repro.dse.vectorized`) hits this for every grid group,
    so the memo makes whole-campaign sweeps pay the matrix walk once per
    ``(m, r)`` instead of once per grid cell.  Returns the same
    (immutable) :class:`TransformOpCounts` the uncached call produces.
    """
    return count_transform_ops(m, r, prefer_canonical)


def count_transform_ops_for(transform: WinogradTransform) -> TransformOpCounts:
    """Count per-tile transform operations for an explicit transform object."""
    n = transform.n
    data = nested_2d_ops(transform.bt_exact, n)
    filter_ops = nested_2d_ops(transform.g_exact, transform.r)
    inverse = nested_2d_ops(transform.at_exact, n)
    return TransformOpCounts(
        m=transform.m,
        r=transform.r,
        data=data,
        filter=filter_ops,
        inverse=inverse,
        multiplications=n * n,
    )


def spatial_tile_ops(m: int, r: int) -> Tuple[int, int]:
    """(multiplications, additions) of computing an ``m x m`` output tile spatially.

    Spatial convolution needs ``r^2`` multiplications and ``r^2 - 1`` additions
    per output pixel (ignoring the cross-channel accumulation, which is common
    to both methods).
    """
    outputs = m * m
    return outputs * r * r, outputs * (r * r - 1)

"""Numerical-accuracy analysis of Winograd fast convolution.

Minimal-filtering algorithms trade multiplications for additions with
constants whose magnitude grows with the output tile size ``m``; in finite
precision this shows up as a loss of accuracy relative to direct convolution.
The paper sidesteps the issue by using single-precision floats ("for the sake
of simplicity and high precision", Section IV) but any design-space
exploration that pushes ``m`` upwards should keep an eye on it.  This module
provides the measurement tools used by the accuracy ablation benchmark and the
property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .fast_conv import WinogradConv2D
from .matrices import get_transform
from .toom_cook import WinogradTransform
from .transforms import winograd_tile_2d

__all__ = ["ErrorStats", "tile_error", "conv_error", "error_sweep"]


@dataclass(frozen=True)
class ErrorStats:
    """Error of a fast-convolution result against the direct reference.

    ``max_abs`` / ``mean_abs`` are absolute errors; ``max_rel`` is relative to
    the largest reference magnitude (so it stays meaningful when individual
    outputs are near zero).
    """

    m: int
    r: int
    dtype: str
    max_abs: float
    mean_abs: float
    max_rel: float
    #: Mean absolute error relative to the largest reference magnitude.
    #: Defaulted so pre-existing call sites (and pickles) stay valid.
    mean_rel: float = 0.0

    def acceptable(self, threshold: float = 1e-3) -> bool:
        """Whether the relative error is below ``threshold``."""
        return self.max_rel <= threshold


def _direct_tile(d: np.ndarray, g: np.ndarray, m: int, r: int) -> np.ndarray:
    out = np.zeros((m, m), dtype=np.float64)
    for y in range(m):
        for x in range(m):
            out[y, x] = float(np.sum(d[y : y + r, x : x + r] * g))
    return out


def tile_error(
    m: int,
    r: int = 3,
    dtype: np.dtype = np.float32,
    trials: int = 64,
    seed: int = 0,
    transform: Optional[WinogradTransform] = None,
) -> ErrorStats:
    """Measure single-tile error of ``F(m x m, r x r)`` in a given precision.

    The transform is applied with intermediate values cast to ``dtype`` (the
    precision the hardware datapath would use) and compared against a float64
    direct convolution.
    """
    if transform is None:
        transform = get_transform(m, r)
    rng = np.random.default_rng(seed)
    n = transform.n
    max_abs = 0.0
    sum_abs = 0.0
    max_ref = 0.0
    count = 0
    for _ in range(trials):
        d = rng.standard_normal((n, n))
        g = rng.standard_normal((r, r))
        reference = _direct_tile(d, g, m, r)
        d_cast = d.astype(dtype).astype(np.float64)
        g_cast = g.astype(dtype).astype(np.float64)
        fast = winograd_tile_2d(transform, d_cast, g_cast)
        fast = fast.astype(dtype).astype(np.float64)
        error = np.abs(fast - reference)
        max_abs = max(max_abs, float(error.max()))
        sum_abs += float(error.sum())
        max_ref = max(max_ref, float(np.abs(reference).max()))
        count += error.size
    mean_abs = sum_abs / count
    max_rel = max_abs / max_ref if max_ref > 0 else 0.0
    mean_rel = mean_abs / max_ref if max_ref > 0 else 0.0
    return ErrorStats(
        m=m,
        r=r,
        dtype=np.dtype(dtype).name,
        max_abs=max_abs,
        mean_abs=mean_abs,
        max_rel=max_rel,
        mean_rel=mean_rel,
    )


def conv_error(
    m: int,
    r: int = 3,
    channels: int = 4,
    kernels: int = 4,
    height: int = 16,
    width: int = 16,
    padding: int = 1,
    seed: int = 0,
) -> ErrorStats:
    """Measure error of the full tiled convolution against a direct reference."""
    from ..nn.reference import direct_conv2d  # imported here to avoid a cycle

    rng = np.random.default_rng(seed)
    feature_map = rng.standard_normal((1, channels, height, width))
    kernel_bank = rng.standard_normal((kernels, channels, r, r))
    reference = direct_conv2d(feature_map, kernel_bank, padding=padding)
    fast = WinogradConv2D(m=m, r=r)(feature_map, kernel_bank, padding=padding)
    error = np.abs(fast - reference)
    max_ref = float(np.abs(reference).max())
    return ErrorStats(
        m=m,
        r=r,
        dtype="float64",
        max_abs=float(error.max()),
        mean_abs=float(error.mean()),
        max_rel=float(error.max()) / max_ref if max_ref > 0 else 0.0,
        mean_rel=float(error.mean()) / max_ref if max_ref > 0 else 0.0,
    )


def error_sweep(
    m_values: Sequence[int],
    r: int = 3,
    dtype: np.dtype = np.float32,
    trials: int = 32,
    seed: int = 0,
) -> list:
    """Tile-level error statistics for a sweep of output tile sizes."""
    return [tile_error(m, r, dtype=dtype, trials=trials, seed=seed) for m in m_values]

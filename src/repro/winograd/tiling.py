"""Feature-map tiling for tiled Winograd convolution.

A 2-D minimal algorithm ``F(m x m, r x r)`` consumes overlapping input tiles
of size ``(m + r - 1) x (m + r - 1)`` with stride ``m`` and produces
non-overlapping ``m x m`` output tiles.  This module handles:

* computing output dimensions and the number of tiles for a layer,
* padding the input so that an integer number of tiles covers it,
* extracting the overlapping tiles into a dense array, and
* scattering computed output tiles back into the output feature map.

It is shared between the functional fast convolution
(:mod:`repro.winograd.fast_conv`) and the cycle-level engine simulator
(:mod:`repro.sim.engine_sim`), which both need exactly the same tile walk the
paper's image buffer performs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["TileGrid", "plan_tiles", "extract_tiles", "assemble_output"]


@dataclass(frozen=True)
class TileGrid:
    """Geometry of the tile walk over one (H, W) feature-map plane.

    Attributes
    ----------
    m, r:
        Output tile size and kernel size of the minimal algorithm.
    input_height, input_width:
        Unpadded input dimensions.
    output_height, output_width:
        "Valid" convolution output dimensions (``H - r + 1`` etc.).
    tiles_y, tiles_x:
        Number of tiles along each axis.
    padded_height, padded_width:
        Input dimensions after zero-padding so the tile walk fits exactly.
    """

    m: int
    r: int
    input_height: int
    input_width: int
    output_height: int
    output_width: int
    tiles_y: int
    tiles_x: int
    padded_height: int
    padded_width: int

    @property
    def tile_size(self) -> int:
        """Input tile edge ``m + r - 1``."""
        return self.m + self.r - 1

    @property
    def tile_count(self) -> int:
        """Total number of tiles covering one plane."""
        return self.tiles_y * self.tiles_x

    @property
    def padded_output_height(self) -> int:
        """Output height produced by the tile walk before cropping."""
        return self.tiles_y * self.m

    @property
    def padded_output_width(self) -> int:
        """Output width produced by the tile walk before cropping."""
        return self.tiles_x * self.m


def plan_tiles(height: int, width: int, m: int, r: int, padding: int = 0) -> TileGrid:
    """Plan the tile walk for an ``height x width`` input plane.

    Parameters
    ----------
    height, width:
        Input feature-map dimensions (before any padding).
    m, r:
        Minimal-algorithm parameters.
    padding:
        Symmetric zero padding applied to the input before convolution (the
        VGG layers use ``padding=1`` with ``r=3`` to preserve dimensions).
    """
    if m < 1 or r < 1:
        raise ValueError("m and r must be positive")
    if height < 1 or width < 1:
        raise ValueError("input dimensions must be positive")
    padded_in_h = height + 2 * padding
    padded_in_w = width + 2 * padding
    output_height = padded_in_h - r + 1
    output_width = padded_in_w - r + 1
    if output_height < 1 or output_width < 1:
        raise ValueError(
            f"kernel {r}x{r} does not fit input {height}x{width} with padding {padding}"
        )
    tiles_y = math.ceil(output_height / m)
    tiles_x = math.ceil(output_width / m)
    tile = m + r - 1
    padded_height = (tiles_y - 1) * m + tile
    padded_width = (tiles_x - 1) * m + tile
    return TileGrid(
        m=m,
        r=r,
        input_height=height,
        input_width=width,
        output_height=output_height,
        output_width=output_width,
        tiles_y=tiles_y,
        tiles_x=tiles_x,
        padded_height=padded_height,
        padded_width=padded_width,
    )


def extract_tiles(plane: np.ndarray, grid: TileGrid, padding: int = 0) -> np.ndarray:
    """Extract overlapping input tiles from one or more feature-map planes.

    Parameters
    ----------
    plane:
        Array of shape ``(..., H, W)``; leading dimensions (batch, channel)
        are preserved.
    grid:
        Tile plan from :func:`plan_tiles` for the same ``(H, W, m, r)``.
    padding:
        Same padding value given to :func:`plan_tiles`.

    Returns
    -------
    np.ndarray
        Array of shape ``(..., tiles_y, tiles_x, t, t)`` with ``t = m + r - 1``.
    """
    plane = np.asarray(plane, dtype=np.float64)
    if plane.shape[-2] != grid.input_height or plane.shape[-1] != grid.input_width:
        raise ValueError(
            f"plane trailing dims {plane.shape[-2:]} do not match grid "
            f"({grid.input_height}, {grid.input_width})"
        )
    pad_total_h = grid.padded_height - grid.input_height
    pad_total_w = grid.padded_width - grid.input_width
    pad_spec = [(0, 0)] * (plane.ndim - 2) + [
        (padding, pad_total_h - padding),
        (padding, pad_total_w - padding),
    ]
    padded = np.pad(plane, pad_spec)
    tile = grid.tile_size
    leading = padded.shape[:-2]
    out = np.empty(leading + (grid.tiles_y, grid.tiles_x, tile, tile), dtype=np.float64)
    for ty in range(grid.tiles_y):
        ys = ty * grid.m
        for tx in range(grid.tiles_x):
            xs = tx * grid.m
            out[..., ty, tx, :, :] = padded[..., ys : ys + tile, xs : xs + tile]
    return out


def assemble_output(tiles: np.ndarray, grid: TileGrid) -> np.ndarray:
    """Scatter ``m x m`` output tiles back into a full output plane.

    Parameters
    ----------
    tiles:
        Array of shape ``(..., tiles_y, tiles_x, m, m)``.
    grid:
        The tile plan the tiles were produced for.

    Returns
    -------
    np.ndarray
        Output plane of shape ``(..., output_height, output_width)`` — the
        zero-padded tail produced by the final partial tiles is cropped off.
    """
    tiles = np.asarray(tiles, dtype=np.float64)
    expected_tail = (grid.tiles_y, grid.tiles_x, grid.m, grid.m)
    if tiles.shape[-4:] != expected_tail:
        raise ValueError(
            f"tiles trailing dims {tiles.shape[-4:]} do not match grid {expected_tail}"
        )
    leading = tiles.shape[:-4]
    full = np.empty(
        leading + (grid.padded_output_height, grid.padded_output_width),
        dtype=np.float64,
    )
    for ty in range(grid.tiles_y):
        ys = ty * grid.m
        for tx in range(grid.tiles_x):
            xs = tx * grid.m
            full[..., ys : ys + grid.m, xs : xs + grid.m] = tiles[..., ty, tx, :, :]
    return full[..., : grid.output_height, : grid.output_width]

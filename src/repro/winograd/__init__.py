"""Winograd minimal-filtering (fast convolution) algorithms.

This subpackage is the algorithmic substrate of the reproduction: exact
generation of ``F(m, r)`` transform matrices, published canonical matrices,
application of the transforms to tiles and feature maps, feature-map tiling,
strength reduction of transform constants, per-tile operation counting and
numerical-accuracy analysis.
"""

from .fast_conv import WinogradConv2D, winograd_conv2d, winograd_correlate_1d
from .matrices import available_canonical, get_transform
from .numerical import ErrorStats, conv_error, error_sweep, tile_error
from .op_count import (
    OpCount,
    TransformOpCounts,
    count_transform_ops,
    count_transform_ops_for,
    matvec_ops,
    nested_2d_ops,
    spatial_tile_ops,
)
from .points import POINT_STRATEGIES, chebyshev_like_points, default_points, integer_points
from .quantized import (
    DEFAULT_BIT_WIDTHS,
    QuantizedTensor,
    calibrated_error,
    clear_calibration,
    quantize_tensor,
    quantized_conv2d,
    quantized_tile_error,
    quantized_winograd_tile,
    tile_error_bound,
    validate_bit_width,
)
from .strength_reduction import (
    ConstantCost,
    ConstantOp,
    MatVecNetwork,
    constant_cost,
    csd_digits,
    matvec_network,
)
from .tiling import TileGrid, assemble_output, extract_tiles, plan_tiles
from .toom_cook import WinogradTransform, generate_transform, minimal_multiplications
from .transforms import (
    data_transform,
    data_transform_1d,
    filter_transform,
    filter_transform_1d,
    inverse_transform,
    inverse_transform_1d,
    winograd_1d,
    winograd_tile_2d,
)

__all__ = [
    "WinogradTransform",
    "generate_transform",
    "minimal_multiplications",
    "get_transform",
    "available_canonical",
    "data_transform",
    "filter_transform",
    "inverse_transform",
    "data_transform_1d",
    "filter_transform_1d",
    "inverse_transform_1d",
    "winograd_1d",
    "winograd_tile_2d",
    "WinogradConv2D",
    "winograd_conv2d",
    "winograd_correlate_1d",
    "TileGrid",
    "plan_tiles",
    "extract_tiles",
    "assemble_output",
    "OpCount",
    "TransformOpCounts",
    "count_transform_ops",
    "count_transform_ops_for",
    "matvec_ops",
    "nested_2d_ops",
    "spatial_tile_ops",
    "ConstantCost",
    "ConstantOp",
    "MatVecNetwork",
    "constant_cost",
    "csd_digits",
    "matvec_network",
    "ErrorStats",
    "tile_error",
    "conv_error",
    "error_sweep",
    "DEFAULT_BIT_WIDTHS",
    "QuantizedTensor",
    "quantize_tensor",
    "quantized_winograd_tile",
    "quantized_conv2d",
    "quantized_tile_error",
    "tile_error_bound",
    "calibrated_error",
    "clear_calibration",
    "validate_bit_width",
    "default_points",
    "integer_points",
    "chebyshev_like_points",
    "POINT_STRATEGIES",
]

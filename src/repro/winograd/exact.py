"""Exact rational linear algebra used by the Winograd transform generator.

The Toom-Cook / Cook-Toom construction of Winograd minimal-filtering
transforms requires inverting small Vandermonde-like matrices.  Doing this in
floating point introduces rounding errors that contaminate the generated
transform matrices and, more importantly for this reproduction, makes the
operator counting (distinguishing "free" constants such as 0 and +/-1 from
real constant multiplications) unreliable.  All matrix construction is
therefore carried out over :class:`fractions.Fraction` and converted to NumPy
arrays only at the very end.

The module intentionally implements only the handful of operations the
generator needs (multiply, transpose, inverse, identity) instead of pulling in
a full computer-algebra system.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence, Union

import numpy as np

Rational = Union[int, Fraction]
Matrix = List[List[Fraction]]

__all__ = [
    "as_fraction",
    "fraction_matrix",
    "identity",
    "matmul",
    "transpose",
    "inverse",
    "to_numpy",
    "from_numpy",
    "is_power_of_two_fraction",
]


def as_fraction(value: Union[Rational, float, str]) -> Fraction:
    """Convert ``value`` to an exact :class:`~fractions.Fraction`.

    Floats are accepted only when they are exactly representable as dyadic
    rationals (e.g. ``0.5``); this guards against silently importing rounding
    error into an otherwise exact computation.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        fraction = Fraction(value)
        # Every float is technically a dyadic rational; only accept the ones a
        # human plausibly meant exactly (small power-of-two denominator), and
        # reject decimal literals like 0.1 whose binary expansion is huge.
        if fraction.denominator > (1 << 20):
            raise ValueError(
                f"float {value!r} is not an exact small dyadic rational; "
                "pass a Fraction or string instead"
            )
        return fraction
    raise TypeError(f"cannot interpret {value!r} as a rational number")


def fraction_matrix(rows: Sequence[Sequence[Union[Rational, float, str]]]) -> Matrix:
    """Build a matrix of :class:`Fraction` from any nested sequence of numbers."""
    if not rows:
        raise ValueError("matrix must have at least one row")
    width = len(rows[0])
    result: Matrix = []
    for row in rows:
        if len(row) != width:
            raise ValueError("all rows must have the same length")
        result.append([as_fraction(value) for value in row])
    return result


def identity(size: int) -> Matrix:
    """Return the ``size`` x ``size`` identity matrix over Fractions."""
    return [
        [Fraction(1) if i == j else Fraction(0) for j in range(size)]
        for i in range(size)
    ]


def matmul(a: Matrix, b: Matrix) -> Matrix:
    """Exact matrix product ``a @ b``."""
    rows_a, cols_a = len(a), len(a[0])
    rows_b, cols_b = len(b), len(b[0])
    if cols_a != rows_b:
        raise ValueError(
            f"incompatible shapes for matmul: ({rows_a}x{cols_a}) @ ({rows_b}x{cols_b})"
        )
    result: Matrix = []
    for i in range(rows_a):
        row = []
        for j in range(cols_b):
            acc = Fraction(0)
            for k in range(cols_a):
                acc += a[i][k] * b[k][j]
            row.append(acc)
        result.append(row)
    return result


def transpose(a: Matrix) -> Matrix:
    """Exact matrix transpose."""
    return [list(column) for column in zip(*a)]


def inverse(a: Matrix) -> Matrix:
    """Exact matrix inverse via Gauss-Jordan elimination with partial pivoting.

    Raises
    ------
    ValueError
        If the matrix is singular or not square.
    """
    size = len(a)
    if any(len(row) != size for row in a):
        raise ValueError("matrix must be square to invert")

    # Augment [A | I] and reduce to [I | A^-1].
    augmented = [list(row) + identity(size)[i] for i, row in enumerate(a)]
    for col in range(size):
        pivot_row = next(
            (row for row in range(col, size) if augmented[row][col] != 0), None
        )
        if pivot_row is None:
            raise ValueError("matrix is singular and cannot be inverted")
        if pivot_row != col:
            augmented[col], augmented[pivot_row] = augmented[pivot_row], augmented[col]
        pivot = augmented[col][col]
        augmented[col] = [value / pivot for value in augmented[col]]
        for row in range(size):
            if row == col:
                continue
            factor = augmented[row][col]
            if factor == 0:
                continue
            augmented[row] = [
                value - factor * pivot_value
                for value, pivot_value in zip(augmented[row], augmented[col])
            ]
    return [row[size:] for row in augmented]


def to_numpy(a: Matrix, dtype=np.float64) -> np.ndarray:
    """Convert an exact matrix to a NumPy array of ``dtype``."""
    return np.array([[float(value) for value in row] for row in a], dtype=dtype)


def from_numpy(array: np.ndarray) -> Matrix:
    """Convert a NumPy array of exactly-representable values to Fractions."""
    return fraction_matrix(array.tolist())


def is_power_of_two_fraction(value: Fraction) -> bool:
    """Return ``True`` if ``abs(value)`` is an integer or inverse power of two.

    Such constants can be realised in hardware as pure wiring / exponent
    adjustment (for floating point) or shifts (for fixed point), so the
    strength-reduction pass treats them as cheaper than general constant
    multiplications.
    """
    value = abs(value)
    if value == 0:
        return False
    numerator, denominator = value.numerator, value.denominator
    return (numerator & (numerator - 1)) == 0 and (denominator & (denominator - 1)) == 0

"""Fixed-point (quantized) execution of the Winograd pipeline.

The paper evaluates its engine in single precision "for the sake of
simplicity and high precision" (Section IV), but deployed accelerators
quantize — and the minimal-filtering constants grow with ``m``, so the
accuracy cost of quantization is exactly the axis the float model cannot
see.  This module provides the numeric backend for that axis:

* :func:`quantize_tensor` — symmetric per-tensor quantization to a signed
  ``bit_width``-bit grid (scale chosen so the largest magnitude maps to
  the largest code);
* :func:`quantized_winograd_tile` — one ``F(m x m, r x r)`` output tile
  computed entirely in integer arithmetic: transform constants rounded to
  ``bit_width - 1`` fractional bits, every B/G/A stage followed by a
  rounding right-shift, intermediates saturated to an ``acc_bits``-wide
  accumulator, and block-floating rescale shifts bringing the
  transform-domain tensors back onto the ``bit_width`` datapath before
  the element-wise multiply (the DSP input width in hardware);
* :func:`quantized_conv2d` — the tiled full-feature-map convolution,
  accumulating over channels in the transform domain like the engine's
  PE array, validated against direct convolution;
* :func:`quantized_tile_error` / :func:`calibrated_error` — seeded error
  measurement against the float64 direct reference, and the memoised
  per-``(m, r, bit_width)`` calibration table the DSE joins into every
  design point.

All arithmetic runs in ``int64``; :data:`MAX_BIT_WIDTH` is chosen so
that the worst-case products of a ``bit_width``-bit datapath value, a
quantized transform constant and an ``acc_bits``-wide accumulator stay
inside 63 bits (a guard in :func:`_check_headroom` enforces this per
transform rather than trusting the cap alone).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .matrices import get_transform
from .numerical import ErrorStats, _direct_tile, tile_error
from .tiling import assemble_output, extract_tiles, plan_tiles
from .toom_cook import WinogradTransform

__all__ = [
    "MIN_BIT_WIDTH",
    "MAX_BIT_WIDTH",
    "DEFAULT_BIT_WIDTHS",
    "CALIBRATION_TRIALS",
    "CALIBRATION_SEED",
    "QuantizedTensor",
    "validate_bit_width",
    "quantize_tensor",
    "saturate",
    "rounding_shift",
    "quantized_winograd_tile",
    "quantized_conv2d",
    "quantized_tile_error",
    "tile_error_bound",
    "calibrated_error",
    "clear_calibration",
]

#: Supported datapath widths.  The ceiling keeps every int64 product in
#: the pipeline representable (see module docstring); it also matches the
#: practical range of FPGA DSP-block multiplier inputs.
MIN_BIT_WIDTH = 2
MAX_BIT_WIDTH = 16

#: The bit-width grid the DSE sweeps by default (``None`` — the float
#: path — is always available in :class:`~repro.core.design_space.SweepSpec`).
DEFAULT_BIT_WIDTHS = (8, 12, 16)

#: Calibration-tensor budget per ``(m, r, bit_width)`` cell.  Small on
#: purpose: the table is measured once per cell and joined into every
#: design point of a campaign, so it sits on the critical path of the
#: first evaluation of each tile size.
CALIBRATION_TRIALS = 16
CALIBRATION_SEED = 2019


def validate_bit_width(bit_width: Optional[int]) -> None:
    """Reject out-of-domain ``bit_width`` values (``None`` means float)."""
    if bit_width is None:
        return
    if (
        not isinstance(bit_width, int)
        or isinstance(bit_width, bool)
        or not MIN_BIT_WIDTH <= bit_width <= MAX_BIT_WIDTH
    ):
        raise ValueError(
            f"bit_width must be None or an integer in "
            f"[{MIN_BIT_WIDTH}, {MAX_BIT_WIDTH}], got {bit_width!r}"
        )


def _validate_acc_bits(bit_width: int, acc_bits: Optional[int]) -> int:
    if acc_bits is None:
        return 2 * bit_width + 4
    if not isinstance(acc_bits, int) or isinstance(acc_bits, bool):
        raise ValueError(f"acc_bits must be an integer, got {acc_bits!r}")
    if not bit_width <= acc_bits <= 48:
        raise ValueError(
            f"acc_bits must be in [bit_width, 48], got {acc_bits!r} "
            f"for bit_width {bit_width}"
        )
    return acc_bits


@dataclass(frozen=True)
class QuantizedTensor:
    """A per-tensor symmetrically quantized integer tensor.

    ``values`` holds signed integers in ``[-(2^(b-1) - 1), 2^(b-1) - 1]``;
    the real tensor is ``values / scale``.
    """

    values: np.ndarray
    scale: float
    bit_width: int

    def dequantize(self) -> np.ndarray:
        """The real-valued tensor this quantization represents."""
        return self.values.astype(np.float64) / self.scale


def quantize_tensor(values: np.ndarray, bit_width: int) -> QuantizedTensor:
    """Quantize a tensor to a symmetric signed ``bit_width``-bit grid.

    The scale maps the largest magnitude onto the largest code
    ``2^(bit_width-1) - 1``.  A tensor that is already integral and fits
    the code range keeps ``scale = 1.0`` so integer inputs pass through
    exactly — the property the exactness tests rely on.
    """
    validate_bit_width(bit_width)
    array = np.asarray(values, dtype=np.float64)
    if not np.all(np.isfinite(array)):
        raise ValueError("cannot quantize a tensor with non-finite values")
    qmax = (1 << (bit_width - 1)) - 1
    max_abs = float(np.max(np.abs(array))) if array.size else 0.0
    if max_abs == 0.0:
        return QuantizedTensor(
            values=np.zeros(array.shape, dtype=np.int64), scale=1.0, bit_width=bit_width
        )
    if max_abs <= qmax and np.all(array == np.rint(array)):
        scale = 1.0
    else:
        scale = qmax / max_abs
    q = np.clip(np.rint(array * scale), -qmax, qmax).astype(np.int64)
    return QuantizedTensor(values=q, scale=scale, bit_width=bit_width)


def saturate(values: np.ndarray, bits: int) -> np.ndarray:
    """Clip to the signed ``bits``-wide two's-complement range."""
    limit = 1 << (bits - 1)
    return np.clip(values, -limit, limit - 1)


def rounding_shift(values: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-up (the hardware idiom).

    ``(x + 2^(shift-1)) >> shift`` — deterministic for negative values
    too (numpy's ``>>`` floors, like the RTL it models).
    """
    if shift <= 0:
        return values
    return (values + (1 << (shift - 1))) >> shift


def _quantize_matrix(matrix: np.ndarray, frac: int) -> np.ndarray:
    """Transform constants rounded to ``frac`` fractional bits."""
    return np.rint(np.asarray(matrix, dtype=np.float64) * float(1 << frac)).astype(
        np.int64
    )


def _rescale(values: np.ndarray, bit_width: int) -> Tuple[np.ndarray, int]:
    """Block-floating rescale of a tensor onto the ``bit_width`` datapath.

    Returns the shifted tensor and the shift applied (its scale is divided
    by ``2^shift``).  The shift is derived from the tensor's largest
    magnitude — the per-tensor "shift" half of the scale + shift scheme.
    """
    max_abs = int(np.max(np.abs(values))) if values.size else 0
    shift = max(0, max_abs.bit_length() - (bit_width - 1))
    if shift == 0:
        return values, 0
    return saturate(rounding_shift(values, shift), bit_width), shift


def _check_headroom(quantized: np.ndarray, n: int, acc_bits: int, label: str) -> None:
    """Guard: the widest product chain of this matrix fits in int64.

    Each matmul multiplies a quantized constant by a value of at most
    ``acc_bits - 1`` magnitude bits and sums ``n`` terms; the guard keeps
    the bound under ``2^62`` so saturation, not wrap-around, is the only
    overflow behaviour.
    """
    max_coeff = int(np.max(np.abs(quantized))) if quantized.size else 0
    if max_coeff and max_coeff.bit_length() + (acc_bits - 1) + n.bit_length() > 62:
        raise ValueError(
            f"quantized {label} constants are too large for the configured "
            f"bit_width/acc_bits (int64 headroom exhausted)"
        )


@dataclass(frozen=True)
class _QuantizedTransform:
    """The integer-constant realisation of one ``F(m, r)`` transform."""

    bt: np.ndarray
    g: np.ndarray
    at: np.ndarray
    frac: int
    shift_lo: int  # first-matmul shift of each stage
    shift_hi: int  # second-matmul shift (shift_lo + shift_hi == frac)


def _quantized_transform(
    transform: WinogradTransform, bit_width: int, acc_bits: int
) -> _QuantizedTransform:
    frac = bit_width - 1
    bt = _quantize_matrix(transform.BT, frac)
    g = _quantize_matrix(transform.G, frac)
    at = _quantize_matrix(transform.AT, frac)
    for matrix, label in ((bt, "B^T"), (g, "G"), (at, "A^T")):
        _check_headroom(matrix, transform.n, acc_bits, label)
    shift_lo = frac // 2
    return _QuantizedTransform(
        bt=bt, g=g, at=at, frac=frac, shift_lo=shift_lo, shift_hi=frac - shift_lo
    )


def _stage(
    tq: np.ndarray, x: np.ndarray, q: _QuantizedTransform, acc_bits: int
) -> np.ndarray:
    """One transform stage ``T x T^T`` in integer arithmetic.

    The two matmuls each scale by ``2^frac``; the split rounding shifts
    remove one ``frac`` in total, so a stage multiplies the tensor's scale
    by exactly ``2^frac`` — the bookkeeping the dequantization step
    reverses.  Intermediates saturate to the accumulator width.
    """
    x = saturate(rounding_shift(tq @ x, q.shift_lo), acc_bits)
    return saturate(rounding_shift(x @ tq.T, q.shift_hi), acc_bits)


def _pipeline_scale(
    scale_d: float, scale_g: float, frac: int, shifts: Tuple[int, int, int]
) -> float:
    """Combined output scale: three stages of ``2^frac`` minus the rescales."""
    su, sv, sm = shifts
    return scale_d * scale_g * float(2.0 ** (3 * frac - su - sv - sm))


def quantized_winograd_tile(
    transform: WinogradTransform,
    d: np.ndarray,
    g: np.ndarray,
    bit_width: int,
    acc_bits: Optional[int] = None,
) -> np.ndarray:
    """One ``m x m`` output tile of ``F(m x m, r x r)`` in fixed point.

    Parameters
    ----------
    transform:
        The ``F(m, r)`` transform to use.
    d, g:
        Real-valued data tile ``(n, n)`` and kernel ``(r, r)``; each is
        quantized per-tensor to ``bit_width`` bits on entry.
    bit_width:
        Datapath width — inputs, rescaled transform-domain tensors and
        the element-wise multiplier operands are this wide.
    acc_bits:
        Accumulator width for transform sums (default ``2*bit_width + 4``).

    Returns
    -------
    np.ndarray
        The dequantized float64 ``(m, m)`` output tile.
    """
    validate_bit_width(bit_width)
    if bit_width is None:
        raise ValueError("quantized_winograd_tile requires a concrete bit_width")
    acc_bits = _validate_acc_bits(bit_width, acc_bits)
    q = _quantized_transform(transform, bit_width, acc_bits)

    dq = quantize_tensor(d, bit_width)
    gq = quantize_tensor(g, bit_width)
    u_raw = _stage(q.bt, dq.values, q, acc_bits)
    v_raw = _stage(q.g, gq.values, q, acc_bits)
    u, su = _rescale(u_raw, bit_width)
    v, sv = _rescale(v_raw, bit_width)
    m_tile = saturate(u * v, acc_bits)
    m_tile, sm = _rescale(m_tile, bit_width)
    y_raw = _stage(q.at, m_tile, q, acc_bits)
    scale = _pipeline_scale(dq.scale, gq.scale, q.frac, (su, sv, sm))
    return y_raw.astype(np.float64) / scale


def quantized_conv2d(
    feature_map: np.ndarray,
    kernels: np.ndarray,
    m: int,
    padding: int = 0,
    bit_width: int = 8,
    acc_bits: Optional[int] = None,
    prefer_canonical: bool = True,
) -> np.ndarray:
    """Tiled fixed-point Winograd convolution of a full feature map.

    Mirrors :class:`~repro.winograd.fast_conv.WinogradConv2D` — same tile
    walk, same transform-domain channel accumulation — but runs the B/G/A
    stages and the element-wise multiply in ``bit_width``-bit integer
    arithmetic with saturating ``acc_bits`` accumulation.  The feature map
    and the kernel bank are each quantized per-tensor once.

    Parameters mirror :func:`~repro.winograd.fast_conv.winograd_conv2d`
    plus ``bit_width`` / ``acc_bits``; returns the dequantized float64
    output of shape ``(N, K, H_out, W_out)``.
    """
    validate_bit_width(bit_width)
    if bit_width is None:
        raise ValueError("quantized_conv2d requires a concrete bit_width")
    feature_map = np.asarray(feature_map, dtype=np.float64)
    kernels = np.asarray(kernels, dtype=np.float64)
    if feature_map.ndim != 4:
        raise ValueError(f"feature map must be (N, C, H, W), got {feature_map.shape}")
    if kernels.ndim != 4 or kernels.shape[-1] != kernels.shape[-2]:
        raise ValueError(f"kernels must be (K, C, r, r), got {kernels.shape}")
    r = kernels.shape[-1]
    if kernels.shape[1] != feature_map.shape[1]:
        raise ValueError(
            f"kernel channel count {kernels.shape[1]} does not match "
            f"input {feature_map.shape[1]}"
        )
    acc_bits = _validate_acc_bits(bit_width, acc_bits)
    transform = get_transform(m, r, prefer_canonical)
    q = _quantized_transform(transform, bit_width, acc_bits)

    dq = quantize_tensor(feature_map, bit_width)
    gq = quantize_tensor(kernels, bit_width)

    height, width = feature_map.shape[-2:]
    grid = plan_tiles(height, width, m, r, padding=padding)
    # Tile values are exact in float64 (|q| < 2^15), so the round trip
    # through the float tiling helper loses nothing.
    tiles = extract_tiles(dq.values.astype(np.float64), grid, padding=padding)
    tiles = tiles.astype(np.int64)

    u_raw = _stage(q.bt, tiles, q, acc_bits)  # (N, C, ty, tx, n, n)
    v_raw = _stage(q.g, gq.values, q, acc_bits)  # (K, C, n, n)
    u, su = _rescale(u_raw, bit_width)
    v, sv = _rescale(v_raw, bit_width)
    # Transform-domain channel accumulation, like the PE array: products
    # are 2*bit_width wide, the channel sum saturates at acc_bits.
    m_tiles = np.einsum("nctyab,kcab->nktyab", u, v)
    m_tiles = saturate(m_tiles, acc_bits)
    m_tiles, sm = _rescale(m_tiles, bit_width)
    y_raw = _stage(q.at, m_tiles, q, acc_bits)
    scale = _pipeline_scale(dq.scale, gq.scale, q.frac, (su, sv, sm))
    return assemble_output(y_raw.astype(np.float64) / scale, grid)


# --------------------------------------------------------------------------- #
# Error measurement and the DSE calibration table
# --------------------------------------------------------------------------- #
def quantized_tile_error(
    m: int,
    r: int = 3,
    bit_width: int = 8,
    trials: int = 64,
    seed: int = 0,
    acc_bits: Optional[int] = None,
    transform: Optional[WinogradTransform] = None,
) -> ErrorStats:
    """Single-tile error of the fixed-point pipeline vs direct float64.

    Same seeded tensor protocol as :func:`repro.winograd.numerical.tile_error`
    (standard-normal ``d`` and ``g`` per trial from one generator), so the
    float and quantized calibration columns are measured on identical
    inputs.
    """
    validate_bit_width(bit_width)
    if bit_width is None:
        raise ValueError("quantized_tile_error requires a concrete bit_width")
    if transform is None:
        transform = get_transform(m, r)
    rng = np.random.default_rng(seed)
    n = transform.n
    max_abs = 0.0
    sum_abs = 0.0
    max_ref = 0.0
    count = 0
    for _ in range(trials):
        d = rng.standard_normal((n, n))
        g = rng.standard_normal((r, r))
        reference = _direct_tile(d, g, m, r)
        fast = quantized_winograd_tile(transform, d, g, bit_width, acc_bits=acc_bits)
        error = np.abs(fast - reference)
        max_abs = max(max_abs, float(error.max()))
        sum_abs += float(error.sum())
        max_ref = max(max_ref, float(np.abs(reference).max()))
        count += error.size
    mean_abs = sum_abs / count
    return ErrorStats(
        m=m,
        r=r,
        dtype=f"int{bit_width}",
        max_abs=max_abs,
        mean_abs=mean_abs,
        max_rel=max_abs / max_ref if max_ref > 0 else 0.0,
        mean_rel=mean_abs / max_ref if max_ref > 0 else 0.0,
    )


def _gain(matrix: np.ndarray) -> float:
    """2-D amplification factor of one transform matrix (row-sum norm²)."""
    row = float(np.max(np.sum(np.abs(np.asarray(matrix, dtype=np.float64)), axis=1)))
    return row * row


def tile_error_bound(m: int, r: int = 3, bit_width: int = 8) -> float:
    """A conservative relative-error bound for the fixed-point tile.

    Derived from the rounding model: every quantization step contributes
    at most one half-ULP at its scale (``2^(1-bit_width)`` relative), and
    each step's error is amplified by at most the row-sum-norm gains of
    the transform matrices still ahead of it.  The constant folds the
    number of rounding sites (two input quantizations, three stage shift
    pairs, three rescales) with generous slack; it is a *bound*, not an
    estimate — measured errors sit well below it.
    """
    validate_bit_width(bit_width)
    transform = get_transform(m, r)
    g_b = _gain(transform.BT)
    g_g = _gain(transform.G)
    g_a = _gain(transform.AT)
    steps = 2.0 ** (1 - bit_width)
    return 16.0 * steps * g_a * (g_b + g_g + 4.0)


#: Memoised calibration table: ``(m, r, bit_width)`` -> ErrorStats.  The
#: measurement is fully deterministic (fixed seed, fixed trial count), so
#: threads racing a cold cell compute bit-identical stats and
#: ``setdefault`` makes every caller share the first-stored object.
_CALIBRATION: Dict[Tuple[int, int, Optional[int]], ErrorStats] = {}
_CALIBRATION_LOCK = threading.Lock()


def calibrated_error(m: int, r: int = 3, bit_width: Optional[int] = None) -> ErrorStats:
    """Measured error statistics for one ``(m, r, bit_width)`` DSE cell.

    ``bit_width=None`` measures the float32 datapath (the paper's
    configuration); an integer measures the fixed-point pipeline.  Both
    use :data:`CALIBRATION_TRIALS` seeded tensors from
    :data:`CALIBRATION_SEED`, so every reported error is reproducible by
    re-running the measurement.  Results are memoised process-wide; use
    :func:`clear_calibration` in tests that need a cold table.
    """
    validate_bit_width(bit_width)
    key = (m, r, bit_width)
    stats = _CALIBRATION.get(key)
    if stats is None:
        if bit_width is None:
            stats = tile_error(
                m, r, dtype=np.float32, trials=CALIBRATION_TRIALS, seed=CALIBRATION_SEED
            )
        else:
            stats = quantized_tile_error(
                m, r, bit_width=bit_width, trials=CALIBRATION_TRIALS, seed=CALIBRATION_SEED
            )
        stats = _CALIBRATION.setdefault(key, stats)
    return stats


def clear_calibration() -> None:
    """Drop the memoised calibration table (for tests)."""
    with _CALIBRATION_LOCK:
        _CALIBRATION.clear()

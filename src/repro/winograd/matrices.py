"""Canonical published Winograd transforms and the transform registry.

Lavin & Gray ("Fast Algorithms for Convolutional Neural Networks", 2015) — the
paper's reference [11] — published hand-tuned transform matrices for the most
commonly used configurations.  They are numerically better conditioned and use
slightly cheaper constants than a naively generated Cook-Toom transform, and
the DATE'19 paper's complexity figures are based on them, so this module keeps
them available verbatim.

:func:`get_transform` is the single entry point the rest of the library uses:
it returns a canonical matrix set when one is registered for ``(m, r)`` and
transparently falls back to the exact generator otherwise, so every
``F(m x m, r x r)`` configuration the design-space exploration wants to probe
is available.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Sequence, Tuple

from . import exact
from .toom_cook import WinogradTransform, generate_transform

__all__ = [
    "canonical_f23",
    "canonical_f43",
    "canonical_f63",
    "get_transform",
    "available_canonical",
    "clear_cache",
]


def _build(
    m: int,
    r: int,
    at_rows: Sequence[Sequence],
    g_rows: Sequence[Sequence],
    bt_rows: Sequence[Sequence],
    label: str,
) -> WinogradTransform:
    """Assemble and verify a transform from literal matrix rows."""
    transform = WinogradTransform(
        m=m,
        r=r,
        points=(),
        at_exact=tuple(tuple(exact.as_fraction(v) for v in row) for row in at_rows),
        g_exact=tuple(tuple(exact.as_fraction(v) for v in row) for row in g_rows),
        bt_exact=tuple(tuple(exact.as_fraction(v) for v in row) for row in bt_rows),
        label=label,
    )
    if not transform.verify_exact():
        raise AssertionError(f"canonical transform F({m},{r}) failed verification")
    return transform


def canonical_f23() -> WinogradTransform:
    """Lavin & Gray's ``F(2, 3)`` transform (their Section 4.1)."""
    at = [[1, 1, 1, 0], [0, 1, -1, -1]]
    g = [
        [1, 0, 0],
        [Fraction(1, 2), Fraction(1, 2), Fraction(1, 2)],
        [Fraction(1, 2), Fraction(-1, 2), Fraction(1, 2)],
        [0, 0, 1],
    ]
    bt = [
        [1, 0, -1, 0],
        [0, 1, 1, 0],
        [0, -1, 1, 0],
        [0, 1, 0, -1],
    ]
    return _build(2, 3, at, g, bt, "lavin")


def canonical_f43() -> WinogradTransform:
    """Lavin & Gray's ``F(4, 3)`` transform (their Section 4.2)."""
    at = [
        [1, 1, 1, 1, 1, 0],
        [0, 1, -1, 2, -2, 0],
        [0, 1, 1, 4, 4, 0],
        [0, 1, -1, 8, -8, 1],
    ]
    g = [
        [Fraction(1, 4), 0, 0],
        [Fraction(-1, 6), Fraction(-1, 6), Fraction(-1, 6)],
        [Fraction(-1, 6), Fraction(1, 6), Fraction(-1, 6)],
        [Fraction(1, 24), Fraction(1, 12), Fraction(1, 6)],
        [Fraction(1, 24), Fraction(-1, 12), Fraction(1, 6)],
        [0, 0, 1],
    ]
    bt = [
        [4, 0, -5, 0, 1, 0],
        [0, -4, -4, 1, 1, 0],
        [0, 4, -4, -1, 1, 0],
        [0, -2, -1, 2, 1, 0],
        [0, 2, -1, -2, 1, 0],
        [0, 4, 0, -5, 0, 1],
    ]
    return _build(4, 3, at, g, bt, "lavin")


def canonical_f63() -> WinogradTransform:
    """The widely used ``F(6, 3)`` transform (as distributed with wincnn)."""
    at = [
        [1, 1, 1, 1, 1, 1, 1, 0],
        [0, 1, -1, 2, -2, Fraction(1, 2), Fraction(-1, 2), 0],
        [0, 1, 1, 4, 4, Fraction(1, 4), Fraction(1, 4), 0],
        [0, 1, -1, 8, -8, Fraction(1, 8), Fraction(-1, 8), 0],
        [0, 1, 1, 16, 16, Fraction(1, 16), Fraction(1, 16), 0],
        [0, 1, -1, 32, -32, Fraction(1, 32), Fraction(-1, 32), 1],
    ]
    g = [
        [1, 0, 0],
        [Fraction(-2, 9), Fraction(-2, 9), Fraction(-2, 9)],
        [Fraction(-2, 9), Fraction(2, 9), Fraction(-2, 9)],
        [Fraction(1, 90), Fraction(1, 45), Fraction(2, 45)],
        [Fraction(1, 90), Fraction(-1, 45), Fraction(2, 45)],
        [Fraction(32, 45), Fraction(16, 45), Fraction(8, 45)],
        [Fraction(32, 45), Fraction(-16, 45), Fraction(8, 45)],
        [0, 0, 1],
    ]
    bt = [
        [1, 0, Fraction(-21, 4), 0, Fraction(21, 4), 0, -1, 0],
        [0, 1, 1, Fraction(-17, 4), Fraction(-17, 4), 1, 1, 0],
        [0, -1, 1, Fraction(17, 4), Fraction(-17, 4), -1, 1, 0],
        [0, Fraction(1, 2), Fraction(1, 4), Fraction(-5, 2), Fraction(-5, 4), 2, 1, 0],
        [0, Fraction(-1, 2), Fraction(1, 4), Fraction(5, 2), Fraction(-5, 4), -2, 1, 0],
        [0, 2, 4, Fraction(-5, 2), -5, Fraction(1, 2), 1, 0],
        [0, -2, 4, Fraction(5, 2), -5, Fraction(-1, 2), 1, 0],
        [0, -1, 0, Fraction(21, 4), 0, Fraction(-21, 4), 0, 1],
    ]
    return _build(6, 3, at, g, bt, "lavin/wincnn")


_CANONICAL_BUILDERS = {
    (2, 3): canonical_f23,
    (4, 3): canonical_f43,
    (6, 3): canonical_f63,
}

_CACHE: Dict[Tuple[int, int, bool], WinogradTransform] = {}


def available_canonical() -> Tuple[Tuple[int, int], ...]:
    """Configurations ``(m, r)`` for which a published canonical transform exists."""
    return tuple(sorted(_CANONICAL_BUILDERS))


def get_transform(
    m: int, r: int, prefer_canonical: bool = True
) -> WinogradTransform:
    """Return the transform for ``F(m, r)``.

    Canonical (published) matrices are used when available and
    ``prefer_canonical`` is true; otherwise an exact Cook-Toom transform is
    generated on the fly.  Results are cached.
    """
    key = (m, r, bool(prefer_canonical))
    if key not in _CACHE:
        builder = _CANONICAL_BUILDERS.get((m, r)) if prefer_canonical else None
        if builder is not None:
            _CACHE[key] = builder()
        else:
            _CACHE[key] = generate_transform(m, r)
    return _CACHE[key]


def clear_cache() -> None:
    """Drop all cached transforms (used by tests that tweak generation)."""
    _CACHE.clear()

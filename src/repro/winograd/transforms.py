"""Application of Winograd transforms to data, filters and products.

These helpers implement the three pipeline stages of the paper's convolution
engine (Section IV) as NumPy operations:

* ``data_transform``     — ``U = B^T d B``        (Eq. (3), data stage)
* ``filter_transform``   — ``V = G g G^T``        (Eq. (3), filter stage)
* ``inverse_transform``  — ``Y = A^T M A``        (Eq. (3), inverse stage)

plus their 1-D counterparts and batched variants used by the tiled fast
convolution in :mod:`repro.winograd.fast_conv` and by the cycle-level engine
simulator in :mod:`repro.sim`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .toom_cook import WinogradTransform

__all__ = [
    "data_transform_1d",
    "filter_transform_1d",
    "inverse_transform_1d",
    "winograd_1d",
    "data_transform",
    "filter_transform",
    "inverse_transform",
    "winograd_tile_2d",
    "batched_data_transform",
    "batched_filter_transform",
    "batched_inverse_transform",
]


def _check_last_dims(array: np.ndarray, expected: int, name: str, ndim: int) -> None:
    if array.ndim < ndim:
        raise ValueError(f"{name} must have at least {ndim} dimensions, got {array.ndim}")
    for axis in range(1, ndim + 1):
        if array.shape[-axis] != expected:
            raise ValueError(
                f"{name} trailing dimensions must be "
                f"{'x'.join([str(expected)] * ndim)}, got {array.shape}"
            )


# --------------------------------------------------------------------------- #
# 1-D transforms
# --------------------------------------------------------------------------- #
def data_transform_1d(transform: WinogradTransform, d: np.ndarray) -> np.ndarray:
    """Apply the 1-D data transform ``B^T d`` to a length-``n`` tile."""
    d = np.asarray(d, dtype=np.float64)
    if d.shape[-1] != transform.n:
        raise ValueError(f"expected last dimension {transform.n}, got {d.shape}")
    return d @ transform.BT.T


def filter_transform_1d(transform: WinogradTransform, g: np.ndarray) -> np.ndarray:
    """Apply the 1-D filter transform ``G g`` to a length-``r`` filter."""
    g = np.asarray(g, dtype=np.float64)
    if g.shape[-1] != transform.r:
        raise ValueError(f"expected last dimension {transform.r}, got {g.shape}")
    return g @ transform.G.T


def inverse_transform_1d(transform: WinogradTransform, m_vec: np.ndarray) -> np.ndarray:
    """Apply the 1-D inverse transform ``A^T m`` to a length-``n`` product."""
    m_vec = np.asarray(m_vec, dtype=np.float64)
    if m_vec.shape[-1] != transform.n:
        raise ValueError(f"expected last dimension {transform.n}, got {m_vec.shape}")
    return m_vec @ transform.AT.T


def winograd_1d(
    transform: WinogradTransform, d: np.ndarray, g: np.ndarray
) -> np.ndarray:
    """Compute the full 1-D minimal filtering ``F(m, r)`` output.

    Equivalent to ``m`` outputs of a correlation of ``d`` (length ``n``) with
    ``g`` (length ``r``).
    """
    u = data_transform_1d(transform, d)
    v = filter_transform_1d(transform, g)
    return inverse_transform_1d(transform, u * v)


# --------------------------------------------------------------------------- #
# 2-D transforms (nested 1-D, Eq. (3))
# --------------------------------------------------------------------------- #
def data_transform(transform: WinogradTransform, d: np.ndarray) -> np.ndarray:
    """2-D data transform ``U = B^T d B`` for an ``n x n`` tile.

    Works on arrays whose two trailing dimensions are the tile; any leading
    dimensions (batch, channel, tile index) are preserved.
    """
    d = np.asarray(d, dtype=np.float64)
    _check_last_dims(d, transform.n, "data tile", 2)
    bt = transform.BT
    return np.einsum("ij,...jk,lk->...il", bt, d, bt, optimize=True)


def filter_transform(transform: WinogradTransform, g: np.ndarray) -> np.ndarray:
    """2-D filter transform ``V = G g G^T`` for an ``r x r`` kernel."""
    g = np.asarray(g, dtype=np.float64)
    _check_last_dims(g, transform.r, "filter", 2)
    g_mat = transform.G
    return np.einsum("ij,...jk,lk->...il", g_mat, g, g_mat, optimize=True)


def inverse_transform(transform: WinogradTransform, m_tile: np.ndarray) -> np.ndarray:
    """2-D inverse transform ``Y = A^T M A`` for an ``n x n`` product tile."""
    m_tile = np.asarray(m_tile, dtype=np.float64)
    _check_last_dims(m_tile, transform.n, "product tile", 2)
    at = transform.AT
    return np.einsum("ij,...jk,lk->...il", at, m_tile, at, optimize=True)


def winograd_tile_2d(
    transform: WinogradTransform,
    d: np.ndarray,
    g: np.ndarray,
    v: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Compute one ``m x m`` output tile from an ``n x n`` data tile.

    Parameters
    ----------
    transform:
        The ``F(m, r)`` transform to use.
    d:
        Input data tile of shape ``(n, n)``.
    g:
        Spatial kernel of shape ``(r, r)``.  Ignored when ``v`` is given.
    v:
        Optional pre-computed filter transform ``G g G^T`` (the paper assumes
        filter transforms are computed offline; passing ``v`` models that).
    """
    u = data_transform(transform, d)
    if v is None:
        v = filter_transform(transform, g)
    return inverse_transform(transform, u * v)


# --------------------------------------------------------------------------- #
# Batched variants (used by the tiled convolution)
# --------------------------------------------------------------------------- #
def batched_data_transform(transform: WinogradTransform, tiles: np.ndarray) -> np.ndarray:
    """Data-transform a batch of tiles with shape ``(..., n, n)``."""
    return data_transform(transform, tiles)


def batched_filter_transform(transform: WinogradTransform, kernels: np.ndarray) -> np.ndarray:
    """Filter-transform a batch of kernels with shape ``(..., r, r)``."""
    return filter_transform(transform, kernels)


def batched_inverse_transform(transform: WinogradTransform, products: np.ndarray) -> np.ndarray:
    """Inverse-transform a batch of product tiles with shape ``(..., n, n)``."""
    return inverse_transform(transform, products)

"""Cook-Toom construction of Winograd minimal-filtering transforms.

A 1-D Winograd minimal filtering algorithm ``F(m, r)`` computes ``m`` outputs
of an FIR filter with ``r`` taps using only ``n = m + r - 1`` general
multiplications (Eq. (2) of the paper):

.. math::

    Y = A^T [(G g) \\odot (B^T d)]

where ``d`` is the length-``n`` input tile, ``g`` the length-``r`` filter and
``A``, ``B``, ``G`` constant matrices.

Construction
------------
The construction used here follows the classic Toom-Cook / Cook-Toom recipe
combined with the transposition principle:

1. A *linear convolution* of an ``m``-coefficient polynomial ``a(x)`` and an
   ``r``-coefficient polynomial ``b(x)`` can be computed by evaluating both at
   ``n - 1`` distinct finite points plus the point at infinity, multiplying
   point-wise and interpolating:  ``c = V^{-1} [(E_a a) \\odot (E_b b)]`` where
   ``E_a`` / ``E_b`` are (extended) Vandermonde evaluation matrices and ``V``
   the square interpolation matrix.
2. FIR filtering (the correlation the paper's Eq. (1) uses) is the
   *transpose* of the linear-convolution map.  Applying the transposition
   principle to the bilinear algorithm above yields

   .. math::

       y = E_a^T [(E_b g) \\odot (V^{-T} d)]

   i.e. ``A^T = E_a^T``, ``G = E_b`` and ``B^T = V^{-T}``.

All arithmetic is exact (:mod:`fractions`), and every generated transform is
self-verified against a direct correlation on a deterministic integer input
before being returned, so an incorrect construction can never silently leak
into the complexity models built on top of it.

2-D algorithms ``F(m x m, r x r)`` are obtained by nesting the 1-D algorithm
with itself (Eq. (3) of the paper): ``Y = A^T [(G g G^T) \\odot (B^T d B)] A``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import exact
from .points import default_points, validate_points

__all__ = ["WinogradTransform", "generate_transform", "minimal_multiplications"]


def minimal_multiplications(m: int, r: int) -> int:
    """Number of general multiplications used by ``F(m, r)``: ``m + r - 1``."""
    if m < 1 or r < 1:
        raise ValueError("m and r must be positive")
    return m + r - 1


def _evaluation_matrix(points: Sequence[Fraction], width: int) -> exact.Matrix:
    """Extended Vandermonde evaluation matrix for a ``width``-coefficient poly.

    Rows are ``[1, a, a^2, ..., a^(width-1)]`` for each finite point ``a``,
    followed by the point-at-infinity row ``[0, ..., 0, 1]`` which selects the
    leading coefficient.
    """
    rows: List[List[Fraction]] = []
    for point in points:
        rows.append([point ** power for power in range(width)])
    rows.append([Fraction(0)] * (width - 1) + [Fraction(1)])
    return rows


def _interpolation_matrix(points: Sequence[Fraction], size: int) -> exact.Matrix:
    """Square interpolation matrix ``V`` (finite-point rows plus infinity row)."""
    rows: List[List[Fraction]] = []
    for point in points:
        rows.append([point ** power for power in range(size)])
    rows.append([Fraction(0)] * (size - 1) + [Fraction(1)])
    return rows


@dataclass(frozen=True)
class WinogradTransform:
    """The transform matrices of a 1-D Winograd algorithm ``F(m, r)``.

    Attributes
    ----------
    m:
        Output tile size (number of outputs produced per application).
    r:
        Filter size (number of taps).
    points:
        The finite interpolation points used by the construction.
    at_exact, g_exact, bt_exact:
        Exact rational matrices ``A^T`` (m x n), ``G`` (n x r), ``B^T`` (n x n).
    """

    m: int
    r: int
    points: Tuple[Fraction, ...]
    at_exact: Tuple[Tuple[Fraction, ...], ...]
    g_exact: Tuple[Tuple[Fraction, ...], ...]
    bt_exact: Tuple[Tuple[Fraction, ...], ...]
    label: str = field(default="", compare=False)

    # ------------------------------------------------------------------ #
    # Convenience properties
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Input tile size / number of general multiplications ``m + r - 1``."""
        return self.m + self.r - 1

    @property
    def input_tile(self) -> int:
        """Alias of :attr:`n` (the 1-D input tile length)."""
        return self.n

    @property
    def multiplications_1d(self) -> int:
        """General multiplications used by one 1-D application."""
        return self.n

    @property
    def multiplications_2d(self) -> int:
        """General multiplications used by one nested 2-D application."""
        return self.n * self.n

    # NumPy views -------------------------------------------------------- #
    @property
    def AT(self) -> np.ndarray:  # noqa: N802 - matrix naming follows the paper
        """Inverse-transform matrix ``A^T`` as float64, shape ``(m, n)``."""
        return exact.to_numpy([list(row) for row in self.at_exact])

    @property
    def A(self) -> np.ndarray:  # noqa: N802
        """``A`` as float64, shape ``(n, m)``."""
        return self.AT.T.copy()

    @property
    def G(self) -> np.ndarray:  # noqa: N802
        """Filter-transform matrix ``G`` as float64, shape ``(n, r)``."""
        return exact.to_numpy([list(row) for row in self.g_exact])

    @property
    def BT(self) -> np.ndarray:  # noqa: N802
        """Data-transform matrix ``B^T`` as float64, shape ``(n, n)``."""
        return exact.to_numpy([list(row) for row in self.bt_exact])

    @property
    def B(self) -> np.ndarray:  # noqa: N802
        """``B`` as float64, shape ``(n, n)``."""
        return self.BT.T.copy()

    # ------------------------------------------------------------------ #
    # Verification
    # ------------------------------------------------------------------ #
    def verify_exact(self) -> bool:
        """Check the bilinear identity exactly on a canonical integer input.

        The identity is linear in both ``d`` and ``g``; verifying it on the
        basis-spanning input ``d = (1, t, t^2, ...)``, ``g = (1, s, s^2, ...)``
        with transcendental-like large primes would be overkill, so instead we
        check all basis pairs ``(e_i, e_j)`` which spans the bilinear form
        completely and therefore *proves* correctness over the rationals.
        """
        m, r, n = self.m, self.r, self.n
        at = [list(row) for row in self.at_exact]
        g_mat = [list(row) for row in self.g_exact]
        bt = [list(row) for row in self.bt_exact]
        for data_index in range(n):
            d = [[Fraction(1) if i == data_index else Fraction(0)] for i in range(n)]
            bd = exact.matmul(bt, d)
            for filter_index in range(r):
                g = [[Fraction(1) if i == filter_index else Fraction(0)] for i in range(r)]
                gg = exact.matmul(g_mat, g)
                pointwise = [[bd[i][0] * gg[i][0]] for i in range(n)]
                y = exact.matmul(at, pointwise)
                for out_index in range(m):
                    expected = (
                        Fraction(1)
                        if data_index == out_index + filter_index
                        else Fraction(0)
                    )
                    if y[out_index][0] != expected:
                        return False
        return True

    def describe(self) -> str:
        """Human-readable one-line description, e.g. ``F(4, 3)``."""
        suffix = f" [{self.label}]" if self.label else ""
        return f"F({self.m}, {self.r}){suffix}"


def generate_transform(
    m: int,
    r: int,
    points: Optional[Sequence[Fraction]] = None,
    label: str = "generated",
    verify: bool = True,
) -> WinogradTransform:
    """Generate the transform matrices of ``F(m, r)``.

    Parameters
    ----------
    m:
        Output tile size (``m >= 1``).
    r:
        Filter size (``r >= 1``).
    points:
        Optional explicit finite interpolation points (``m + r - 2`` of them).
        Defaults to the canonical sequence from :mod:`repro.winograd.points`.
    label:
        Free-form provenance tag stored on the transform.
    verify:
        When ``True`` (default) the generated transform is proven correct over
        the rationals before being returned.

    Returns
    -------
    WinogradTransform

    Raises
    ------
    ValueError
        If the parameters are invalid, the points are not distinct, or the
        generated transform fails verification.
    """
    if m < 1 or r < 1:
        raise ValueError(f"m and r must be >= 1, got m={m}, r={r}")
    n = m + r - 1
    needed = n - 1
    if points is None:
        points = default_points(needed)
    points = validate_points(points)
    if len(points) != needed:
        raise ValueError(
            f"F({m}, {r}) needs exactly {needed} finite interpolation points, "
            f"got {len(points)}"
        )

    if n == 1:
        # Degenerate case m = r = 1: a single multiplication, all transforms
        # are 1x1 identities.
        one = ((Fraction(1),),)
        transform = WinogradTransform(
            m=m, r=r, points=(), at_exact=one, g_exact=one, bt_exact=one, label=label
        )
        return transform

    evaluation_data = _evaluation_matrix(points, m)       # E_a: n x m
    evaluation_filter = _evaluation_matrix(points, r)     # E_b: n x r
    interpolation = _interpolation_matrix(points, n)      # V:   n x n

    at_matrix = exact.transpose(evaluation_data)           # m x n
    g_matrix = evaluation_filter                           # n x r
    bt_matrix = exact.transpose(exact.inverse(interpolation))  # n x n

    transform = WinogradTransform(
        m=m,
        r=r,
        points=tuple(points),
        at_exact=tuple(tuple(row) for row in at_matrix),
        g_exact=tuple(tuple(row) for row in g_matrix),
        bt_exact=tuple(tuple(row) for row in bt_matrix),
        label=label,
    )
    if verify and not transform.verify_exact():
        raise ValueError(
            f"generated transform F({m}, {r}) with points {points} failed verification"
        )
    return transform

"""Interpolation-point selection for Winograd minimal-filtering transforms.

The Cook-Toom construction of an ``F(m, r)`` algorithm evaluates the data and
filter polynomials at ``m + r - 2`` distinct finite points plus the point at
infinity.  The *choice* of points does not affect correctness but it strongly
affects two quantities this reproduction cares about:

* the number and magnitude of non-trivial constants in the transform matrices
  (and therefore the adder/shifter cost of the data/filter/inverse transform
  stages, i.e. the ``beta``/``gamma``/``delta`` terms of Eq. (5) in the paper);
* the numerical error of the fast algorithm in finite precision (large points
  produce badly conditioned Vandermonde systems).

The default sequence ``0, 1, -1, 2, -2, 1/2, -1/2, 4, -4, 1/4, -1/4, ...`` is
the one used throughout the fast-convolution literature (Lavin & Gray 2015,
wincnn) because it keeps constants as small powers of two for as long as
possible.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence

__all__ = [
    "default_points",
    "integer_points",
    "chebyshev_like_points",
    "validate_points",
    "POINT_STRATEGIES",
]


def _canonical_sequence() -> Iterable[Fraction]:
    """Canonical sequence: 0, 1, -1, 2, -2, 1/2, -1/2, 4, -4, 1/4, -1/4, 8, ..."""
    yield Fraction(0)
    yield Fraction(1)
    yield Fraction(-1)
    power = 1
    while True:
        value = Fraction(2) ** power
        yield value
        yield -value
        inverse = Fraction(1, 2) ** power
        yield inverse
        yield -inverse
        power += 1


def default_points(count: int) -> List[Fraction]:
    """Return the first ``count`` points of the canonical sequence.

    Parameters
    ----------
    count:
        Number of finite interpolation points required, i.e. ``m + r - 2``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    points: List[Fraction] = []
    for point in _canonical_sequence():
        if len(points) == count:
            break
        points.append(point)
    return points


def integer_points(count: int) -> List[Fraction]:
    """Return ``count`` small integer points: 0, 1, -1, 2, -2, 3, -3, ...

    Integer-only points avoid fractional constants in the filter transform at
    the cost of faster-growing magnitudes (worse conditioning for large ``m``).
    Used by the interpolation-point ablation benchmark.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    points: List[Fraction] = [Fraction(0)]
    magnitude = 1
    while len(points) < count:
        points.append(Fraction(magnitude))
        if len(points) < count:
            points.append(Fraction(-magnitude))
        magnitude += 1
    return points[:count]


def chebyshev_like_points(count: int) -> List[Fraction]:
    """Return points spread symmetrically in ``[-1, 1]`` with dyadic spacing.

    This mimics the error-minimising spread of Chebyshev nodes while keeping
    every point an exact dyadic rational so the construction stays exact.
    Useful for studying the numerical-accuracy / op-count trade-off.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    points: List[Fraction] = [Fraction(0)]
    # Fill with +/- k / 2^ceil(log2(count)) style dyadic values inside [-1, 1].
    denominator = 1
    while denominator < count:
        denominator *= 2
    numerator = 1
    while len(points) < count:
        value = Fraction(numerator, denominator)
        points.append(value)
        if len(points) < count:
            points.append(-value)
        numerator += 1
    return points[:count]


def validate_points(points: Sequence[Fraction]) -> List[Fraction]:
    """Validate that interpolation points are distinct rationals.

    Returns the points as a list of :class:`Fraction`.
    """
    converted = [Fraction(point) for point in points]
    if len(set(converted)) != len(converted):
        raise ValueError(f"interpolation points must be distinct, got {points}")
    return converted


#: Named strategies exposed to the design-space exploration and ablation code.
POINT_STRATEGIES = {
    "canonical": default_points,
    "integer": integer_points,
    "chebyshev": chebyshev_like_points,
}
